#include "nd/leaf_index_nd.h"

#include <cstdint>
#include <limits>

#include "common/check.h"
#include "index/frac_kernel.h"

namespace dpgrid {

void FlatLeafIndexNd::Reserve(size_t cells, size_t corner_doubles,
                              size_t dims) {
  DPGRID_CHECK(dims >= 1 && dims <= kMaxDims);
  dims_ = dims;
  offsets_.reserve(cells);
  sizes_.reserve(cells * kMaxDims);
  strides_.reserve(cells * kMaxDims);
  origin_.reserve(cells * kMaxDims);
  inv_extent_.reserve(cells * kMaxDims);
  sizes_f_.reserve(cells * kMaxDims);
  sizes32_.reserve(cells * kMaxDims);
  strides32_.reserve(cells * kMaxDims);
  offsets32_.reserve(cells);
  unit_total_.reserve(cells);
  unit_.reserve(cells);
  arena_.reserve(corner_doubles);
}

void FlatLeafIndexNd::Add(const GridNd& counts, const PrefixSumNd& prefix) {
  const size_t d = prefix.dims();
  DPGRID_CHECK(d == dims_ && counts.dims() == d);
  const std::vector<double>& corners = prefix.corners();
  // The batch kernels compute corner indices in 32-bit lanes; an arena
  // this size would be a multi-gigabyte synopsis, far past every build
  // guideline, so treat it as a construction error rather than silently
  // serving a slower path.
  DPGRID_CHECK_MSG(
      arena_.size() + corners.size() <=
          static_cast<size_t>(std::numeric_limits<int32_t>::max()),
      "flat leaf arena exceeds 32-bit indexing");
  offsets_.push_back(arena_.size());
  offsets32_.push_back(static_cast<int32_t>(arena_.size()));
  arena_.insert(arena_.end(), corners.begin(), corners.end());
  const size_t row = sizes_.size();
  sizes_.resize(row + kMaxDims, 0);
  strides_.resize(row + kMaxDims, 0);
  origin_.resize(row + kMaxDims, 0.0);
  inv_extent_.resize(row + kMaxDims, 0.0);
  sizes_f_.resize(row + kMaxDims, 0.0);
  sizes32_.resize(row + kMaxDims, 0);
  strides32_.resize(row + kMaxDims, 0);
  // Strides of the padded (n_a + 1)-shaped corner array, last axis
  // contiguous — the same layout PrefixSumNd computes for itself.
  size_t stride = 1;
  for (size_t a = d; a-- > 0;) {
    strides_[row + a] = stride;
    stride *= prefix.sizes()[a] + 1;
  }
  bool unit = true;
  for (size_t a = 0; a < d; ++a) {
    const size_t n = prefix.sizes()[a];
    sizes_[row + a] = n;
    sizes_f_[row + a] = static_cast<double>(n);
    sizes32_[row + a] = static_cast<int32_t>(n);
    strides32_[row + a] = static_cast<int32_t>(strides_[row + a]);
    origin_[row + a] = counts.domain().lo(a);
    inv_extent_[row + a] = counts.inv_cell_extents()[a];
    if (n != 1) unit = false;
  }
  unit_.push_back(unit ? 1 : 0);
  // Whole-leaf block sum via the same scalar inclusion-exclusion the
  // query path runs — the 1^d kernel treats it as a register constant,
  // and precomputing it with identical arithmetic keeps that path
  // bitwise-equal to a query-time BlockSum.
  const size_t cell = offsets_.size() - 1;
  size_t zeros[kMaxDims] = {0};
  unit_total_.push_back(View(cell).BlockSum(zeros, sizes_.data() + row));
}

namespace leaf_nd_internal {

#ifdef DPGRID_FRAC_KERNEL_X86

static_assert(FlatLeafIndexNd::kMaxDims == 8,
              "kernel gathers index geometry rows as cell << 3");

#define DPGRID_FRAC_TARGET "arch=x86-64-v4"
#define DPGRID_FRAC_SUFFIX V4
#include "index/leaf_kernel_nd_x86.inc"
#undef DPGRID_FRAC_TARGET
#undef DPGRID_FRAC_SUFFIX

#define DPGRID_FRAC_TARGET "avx2,fma"
#define DPGRID_FRAC_SUFFIX Avx2
#include "index/leaf_kernel_nd_x86.inc"
#undef DPGRID_FRAC_TARGET
#undef DPGRID_FRAC_SUFFIX

#endif  // DPGRID_FRAC_KERNEL_X86

namespace {

/// Same-cell runs at least this long get the hoisted-view kernel; shorter
/// runs batch up for the lane-mixed pair kernels.
constexpr size_t kViewRunMinNd = 6;

}  // namespace

}  // namespace leaf_nd_internal

void AccumulateCellPairsNd(const FlatLeafIndexNd& index, const double* qlo,
                           const double* qhi, size_t qstride,
                           const CellPair* pairs, size_t n,
                           const uint32_t* bucket_hist, double* out) {
  if (n == 0) return;
  pair_sort::PairScratch& s = pair_sort::GetPairScratch();

  // Group by cell (stable): leaf corner accesses become ascending arena
  // sweeps and repeat-cell runs stay hot in L1.
  const CellPair* sp = pair_sort::SortPairsByCell(
      pairs, n, index.num_cells(), bucket_hist, &s);
  s.contrib.resize(n);
  double* contrib = s.contrib.data();

  const NdKernelIndex ki = index.KernelIndex();
  const size_t d = ki.dims;

  // The scalar per-pair path: the exact ToCellCoords arithmetic on the
  // SoA query copy, then the shared FractionalSum — what AnswerOneFlat
  // runs per border cell.
  auto answer_one = [&](const CellPair& p) -> double {
    const size_t row = size_t{p.cell} * FlatLeafIndexNd::kMaxDims;
    double lo[FlatLeafIndexNd::kMaxDims];
    double hi[FlatLeafIndexNd::kMaxDims];
    for (size_t a = 0; a < d; ++a) {
      lo[a] = (qlo[a * qstride + p.query] - ki.origin[row + a]) *
              ki.inv_extent[row + a];
      hi[a] = (qhi[a * qstride + p.query] - ki.origin[row + a]) *
              ki.inv_extent[row + a];
    }
    return index.View(p.cell).FractionalSum(lo, hi);
  };

#ifdef DPGRID_FRAC_KERNEL_X86
  const int tier = frac_internal::CpuTier();
  if (tier >= 1) {
    // Short runs batch up into two compact pending lists — one per
    // kernel class — and flush through lane-mixed kernels. Contribution
    // slots are absolute (sorted positions), so flush timing is free of
    // ordering constraints.
    auto flush_pending = [&](int which) {
      std::vector<CellPair>& list = s.pending[which];
      std::vector<uint32_t>& pos = s.pending_pos[which];
      const size_t len = list.size();
      if (len == 0) return;
      s.pending_contrib.resize(len);
      double* ptmp = s.pending_contrib.data();
      const size_t vec = len & ~size_t{3};
      if (vec > 0) {
        if (which == 1) {
          if (tier == 2) {
            leaf_nd_internal::AnswerPairs1x1NdV4(ki, qlo, qhi, qstride,
                                                 list.data(), vec, ptmp);
          } else {
            leaf_nd_internal::AnswerPairs1x1NdAvx2(ki, qlo, qhi, qstride,
                                                   list.data(), vec, ptmp);
          }
        } else if (tier == 2) {
          leaf_nd_internal::AnswerCellPairsNdV4(ki, qlo, qhi, qstride,
                                                list.data(), vec, ptmp);
        } else {
          leaf_nd_internal::AnswerCellPairsNdAvx2(ki, qlo, qhi, qstride,
                                                  list.data(), vec, ptmp);
        }
      }
      for (size_t k = vec; k < len; ++k) ptmp[k] = answer_one(list[k]);
      for (size_t k = 0; k < len; ++k) contrib[pos[k]] = ptmp[k];
      list.clear();
      pos.clear();
    };
    size_t i = 0;
    while (i < n) {
      size_t j = i + 1;
      const uint32_t cell = sp[i].cell;
      while (j < n && sp[j].cell == cell) ++j;
      // 1^d leaves have a near-free kernel setup (one precomputed total,
      // no corner gathers), so even short runs of them beat the
      // lane-mixed paths.
      const bool is_unit = index.IsUnitLeaf(cell);
      const size_t run_min = is_unit ? 4 : leaf_nd_internal::kViewRunMinNd;
      if (j - i >= run_min) {
        const size_t vec = (j - i) & ~size_t{3};
        if (is_unit) {
          if (tier == 2) {
            leaf_nd_internal::AnswerViewPairs1x1NdV4(
                ki, cell, qlo, qhi, qstride, sp + i, vec, contrib + i);
          } else {
            leaf_nd_internal::AnswerViewPairs1x1NdAvx2(
                ki, cell, qlo, qhi, qstride, sp + i, vec, contrib + i);
          }
        } else if (tier == 2) {
          leaf_nd_internal::AnswerViewPairsNdV4(ki, cell, qlo, qhi, qstride,
                                                sp + i, vec, contrib + i);
        } else {
          leaf_nd_internal::AnswerViewPairsNdAvx2(ki, cell, qlo, qhi,
                                                  qstride, sp + i, vec,
                                                  contrib + i);
        }
        // The run's sub-4 tail rides the lane-mixed pending kernels too
        // (a scalar fallback per tail pair costs more than a lane).
        for (size_t k = i + vec; k < j; ++k) {
          const int which = is_unit ? 1 : 0;
          s.pending[which].push_back(sp[k]);
          s.pending_pos[which].push_back(static_cast<uint32_t>(k));
        }
      } else {
        const int which = is_unit ? 1 : 0;
        for (size_t k = i; k < j; ++k) {
          s.pending[which].push_back(sp[k]);
          s.pending_pos[which].push_back(static_cast<uint32_t>(k));
        }
      }
      i = j;
    }
    flush_pending(0);
    flush_pending(1);
  } else {
    for (size_t j = 0; j < n; ++j) contrib[j] = answer_one(sp[j]);
  }
#else
  for (size_t j = 0; j < n; ++j) contrib[j] = answer_one(sp[j]);
#endif

  // Accumulate in sorted order. Per query this adds contributions in
  // ascending-cell order — identical to the scalar border walk, because
  // emission was cell-ascending per query and the sort is stable.
  for (size_t j = 0; j < n; ++j) {
    out[sp[j].query] += contrib[j];
  }
}

}  // namespace dpgrid
