#ifndef DPGRID_ND_DATASET_ND_H_
#define DPGRID_ND_DATASET_ND_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "nd/box_nd.h"

namespace dpgrid {

/// A d-dimensional point dataset with its public domain box.
class DatasetNd {
 public:
  DatasetNd(BoxNd domain, std::vector<PointNd> points);
  explicit DatasetNd(BoxNd domain);

  int64_t size() const { return static_cast<int64_t>(points_.size()); }
  size_t dims() const { return domain_.dims(); }
  const BoxNd& domain() const { return domain_; }
  const std::vector<PointNd>& points() const { return points_; }

  /// Exact count of points in `query` (O(N·d); datasets in the nd subsystem
  /// are evaluation-sized, so brute force is the honest ground truth).
  int64_t CountInBox(const BoxNd& query) const;

 private:
  BoxNd domain_;
  std::vector<PointNd> points_;
};

/// N points uniform over the domain.
DatasetNd MakeUniformDatasetNd(const BoxNd& domain, int64_t n, Rng& rng);

/// One Gaussian cluster of a d-dimensional mixture.
struct ClusterNd {
  PointNd center;
  std::vector<double> stddev;
  double weight = 1.0;
};

/// Gaussian mixture with uniform background (points clamped into the
/// domain) — the d-dimensional analogue of MakeGaussianMixture.
DatasetNd MakeGaussianMixtureNd(const BoxNd& domain, int64_t n,
                                const std::vector<ClusterNd>& clusters,
                                double background_fraction, Rng& rng);

/// `count` random clusters with Zipf(s) weights, centers uniform in the
/// domain and stddevs uniform in [s_lo, s_hi] of each axis extent.
std::vector<ClusterNd> MakeRandomClustersNd(const BoxNd& domain, size_t count,
                                            double s_lo_frac,
                                            double s_hi_frac, double zipf_s,
                                            Rng& rng);

}  // namespace dpgrid

#endif  // DPGRID_ND_DATASET_ND_H_
