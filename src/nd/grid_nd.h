#ifndef DPGRID_ND_GRID_ND_H_
#define DPGRID_ND_GRID_ND_H_

#include <cstddef>
#include <span>
#include <vector>

#include "common/random.h"
#include "nd/box_nd.h"
#include "nd/dataset_nd.h"

namespace dpgrid {

/// A borrowed, allocation-free view over a d-dimensional prefix-sum
/// corner array: the one implementation of block and fractional sums
/// shared by PrefixSumNd (which views its own storage) and flattened leaf
/// indexes (which view an arena). Sharing the code is what keeps a
/// flattened answer bitwise-identical to the owning object's.
struct PrefixViewNd {
  const double* prefix = nullptr;  // padded corner array
  const size_t* sizes = nullptr;   // per-axis cell counts
  const size_t* strides = nullptr; // strides of the (n_a + 1)-shaped array
  size_t dims = 0;

  /// Sum over the integer cell block [lo_a, hi_a) per axis (clamped).
  double BlockSum(const size_t* lo, const size_t* hi) const;

  /// Fractional-volume weighted sum over continuous cell coordinates
  /// [lo_a, hi_a] per axis (cell units; clamped to the grid).
  double FractionalSum(const double* lo, const double* hi) const;
};

/// d-dimensional prefix sums with fractional orthotope queries — the
/// generalization of PrefixSum2D. A query box given in continuous cell
/// coordinates is answered in O(3^d · 2^d) independent of grid size:
/// each axis decomposes into at most three weighted segments, and each
/// segment combination is a block sum computed by inclusion-exclusion over
/// the 2^d corners of the prefix array.
class PrefixSumNd {
 public:
  /// Hard cap on dimensionality; lets every query run on fixed-size stack
  /// buffers so the hot path never heap-allocates.
  static constexpr size_t kMaxDims = 8;

  /// `values` is row-major with the last axis contiguous;
  /// values[(...(i0*n1 + i1)*n2 + ...) + i_{d-1}].
  PrefixSumNd(const std::vector<double>& values,
              const std::vector<size_t>& sizes);

  /// Adopts a previously exported corner array (see corners()) without
  /// recomputation, so a snapshot-restored index is bit-for-bit the one
  /// that was saved. `corners` must hold prod(sizes[a] + 1) entries.
  static PrefixSumNd FromRaw(std::vector<size_t> sizes,
                             std::vector<double> corners);

  size_t dims() const { return sizes_.size(); }
  const std::vector<size_t>& sizes() const { return sizes_; }

  /// The padded corner array backing the index; what the snapshot store
  /// persists.
  const std::vector<double>& corners() const { return prefix_; }

  /// Sum over the integer cell block [lo_a, hi_a) per axis (clamped).
  double BlockSum(const std::vector<size_t>& lo,
                  const std::vector<size_t>& hi) const;

  /// Allocation-free form: `lo` and `hi` point at dims() values.
  double BlockSum(const size_t* lo, const size_t* hi) const;

  /// Fractional-volume weighted sum over continuous cell coordinates
  /// [lo_a, hi_a] per axis (cell units; clamped to the grid).
  double FractionalSum(const std::vector<double>& lo,
                       const std::vector<double>& hi) const;

  /// Allocation-free form: `lo` and `hi` point at dims() values.
  double FractionalSum(const double* lo, const double* hi) const;

  /// Borrowed view over this index; must not outlive it.
  PrefixViewNd View() const {
    return PrefixViewNd{prefix_.data(), sizes_.data(), strides_.data(),
                        dims()};
  }

  /// Sum of all cells.
  double TotalSum() const;

 private:
  PrefixSumNd() = default;

  std::vector<size_t> sizes_;
  std::vector<size_t> strides_;  // strides of the (n_a + 1)-shaped array
  std::vector<double> prefix_;
};

/// A d-dimensional grid of per-cell values over a domain box: the
/// generalization of GridCounts. Cells are half-open; points on a domain's
/// upper faces map to the last cell of that axis.
class GridNd {
 public:
  GridNd(BoxNd domain, std::vector<size_t> sizes);

  /// Exact histogram of a dataset at the given per-axis resolution.
  static GridNd FromDataset(const DatasetNd& dataset,
                            std::vector<size_t> sizes);

  /// Adopts an existing row-major value array without the zero-fill of the
  /// normal constructor — the snapshot-restore path. `values` must hold
  /// prod(sizes) entries.
  static GridNd FromRaw(BoxNd domain, std::vector<size_t> sizes,
                        std::vector<double> values);

  size_t dims() const { return sizes_.size(); }
  const BoxNd& domain() const { return domain_; }
  const std::vector<size_t>& sizes() const { return sizes_; }
  size_t num_cells() const { return values_.size(); }

  /// Reciprocal per-axis cell extents — what the allocation-free
  /// ToCellCoords multiplies by; flattened leaf indexes copy these so
  /// their coordinate transforms stay bitwise-identical.
  const std::vector<double>& inv_cell_extents() const {
    return inv_cell_extent_;
  }

  const std::vector<double>& values() const { return values_; }
  std::vector<double>& mutable_values() { return values_; }

  /// Flattened index of a cell.
  size_t FlatIndex(const std::vector<size_t>& idx) const;

  /// Cell index of a point (clamped).
  std::vector<size_t> CellOf(const PointNd& p) const;

  /// Box of the cell at a (multi-)index.
  BoxNd CellBox(const std::vector<size_t>& idx) const;

  /// Box of the cell at a flattened index.
  BoxNd CellBoxFlat(size_t flat) const;

  /// Adds iid Lap(1/epsilon) noise to every cell.
  void AddLaplaceNoise(double epsilon, Rng& rng);

  /// Converts a query box to continuous cell coordinates.
  void ToCellCoords(const BoxNd& query, std::vector<double>* lo,
                    std::vector<double>* hi) const;

  /// Allocation-free form writing into caller-provided scratch of dims()
  /// doubles each; uses precomputed reciprocal cell extents (no divisions),
  /// so results may differ from the vector overload in the last ulp.
  void ToCellCoords(const BoxNd& query, double* lo, double* hi) const;

  /// Sum of all cells.
  double Total() const;

 private:
  GridNd() = default;

  BoxNd domain_;
  std::vector<size_t> sizes_;
  std::vector<size_t> strides_;
  std::vector<double> cell_extent_;
  std::vector<double> inv_cell_extent_;
  std::vector<double> values_;
};

/// The shared batch loop for any synopsis that answers from a single leaf
/// grid + prefix sums (UniformGridNd, HierarchyNd): hoists the grid/prefix
/// derefs and reuses stack scratch — no per-query allocation. Results are
/// bitwise-identical to per-query ToCellCoords + FractionalSum calls.
void AnswerBatchLeafGridNd(const GridNd& grid, const PrefixSumNd& prefix,
                           std::span<const BoxNd> queries,
                           std::span<double> out);

}  // namespace dpgrid

#endif  // DPGRID_ND_GRID_ND_H_
