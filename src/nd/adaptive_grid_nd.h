#ifndef DPGRID_ND_ADAPTIVE_GRID_ND_H_
#define DPGRID_ND_ADAPTIVE_GRID_ND_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/random.h"
#include "dp/budget.h"
#include "nd/grid_nd.h"
#include "nd/guidelines_nd.h"
#include "nd/leaf_index_nd.h"
#include "nd/synopsis_nd.h"

namespace dpgrid {

/// Options for AdaptiveGridNd.
struct AdaptiveGridNdOptions {
  /// Level-1 per-axis size m1. 0 = generalized suggestion.
  int level1_size = 0;
  /// Budget fraction for level-1 counts.
  double alpha = 0.5;
  /// Guideline-2 constant c2.
  double c2 = 5.0;
  /// Guideline-1 constant c (used when level1_size == 0).
  double guideline_c = 10.0;
  /// Cap on per-cell leaf size (memory guard; the cap binds only in
  /// huge-epsilon corner cases).
  int max_level2_size = 64;
  /// Apply 2-level constrained inference.
  bool constrained_inference = true;
};

/// The Adaptive Grid method in d dimensions: a coarse m1^d level-1 grid
/// (budget α·ε) whose cells are refined into m2^d leaf grids by their noisy
/// density (budget (1−α)·ε), followed by 2-level constrained inference —
/// the direct generalization of the paper's AG (§IV-B).
class AdaptiveGridNd : public SynopsisNd {
 public:
  /// One leaf grid per level-1 cell, with its prefix-sum index.
  struct LeafBlock {
    std::optional<GridNd> counts;
    std::optional<PrefixSumNd> prefix;
  };

  AdaptiveGridNd(const DatasetNd& dataset, PrivacyBudget& budget, Rng& rng,
                 const AdaptiveGridNdOptions& options = {});

  AdaptiveGridNd(const DatasetNd& dataset, double epsilon, Rng& rng,
                 const AdaptiveGridNdOptions& options = {});

  /// Snapshot-store restore: adopts all post-inference state without
  /// recomputation. `leaves` must hold m1^d blocks in row-major order,
  /// each with counts and prefix set.
  static std::unique_ptr<AdaptiveGridNd> Restore(
      AdaptiveGridNdOptions options, int m1, GridNd level1,
      PrefixSumNd level1_prefix, std::vector<LeafBlock> leaves);

  double Answer(const BoxNd& query) const override;
  void AnswerBatch(std::span<const BoxNd> queries,
                   std::span<double> out) const override;
  std::string Name() const override;

  size_t dims() const override { return level1_->dims(); }

  int level1_size() const { return m1_; }

  /// Post-inference level-1 count at a flattened level-1 index.
  double Level1Count(size_t flat) const { return level1_->values()[flat]; }

  /// Leaf per-axis size of a level-1 cell (flattened index).
  int Level2Size(size_t flat) const;

  /// Total leaf cells across the synopsis.
  int64_t TotalLeafCells() const;

  const AdaptiveGridNdOptions& options() const { return options_; }

  /// Post-inference level-1 grid, its prefix index, and the leaf blocks
  /// (row-major per level-1 cell) — the state persisted by snapshots.
  const GridNd& level1_counts() const { return *level1_; }
  const PrefixSumNd& level1_prefix() const { return *level1_prefix_; }
  const std::vector<LeafBlock>& leaves() const { return leaves_; }

  /// The flattened leaf index behind AnswerBatch — derived state, rebuilt
  /// by Build and Restore alike, never persisted.
  const FlatLeafIndexNd& flat_index() const { return flat_; }

 private:
  AdaptiveGridNd() = default;

  void Build(const DatasetNd& dataset, PrivacyBudget& budget, Rng& rng);

  /// Materializes flat_ from leaves_ (call after leaves_ is final).
  void BuildFlatIndex();

  /// The one query implementation both Answer and AnswerBatch funnel
  /// through; runs entirely on stack scratch (no per-query allocation).
  double AnswerOne(const BoxNd& query) const;

  /// AnswerOne against the flattened leaf index — the same decomposition
  /// and FractionalSum code, minus the per-cell heap chases. Bitwise
  /// identical to AnswerOne; AnswerBatch's per-query body.
  double AnswerOneFlat(const BoxNd& query) const;

  AdaptiveGridNdOptions options_;
  int m1_ = 0;
  std::optional<GridNd> level1_;       // post-inference v'
  std::optional<PrefixSumNd> level1_prefix_;
  std::vector<LeafBlock> leaves_;      // one per level-1 cell (flattened)
  FlatLeafIndexNd flat_;               // contiguous mirror of the leaves
};

}  // namespace dpgrid

#endif  // DPGRID_ND_ADAPTIVE_GRID_ND_H_
