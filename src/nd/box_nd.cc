#include "nd/box_nd.h"

#include <algorithm>
#include <cstdio>

#include "common/check.h"

namespace dpgrid {

BoxNd::BoxNd(std::vector<double> lo, std::vector<double> hi)
    : lo_(std::move(lo)), hi_(std::move(hi)) {
  DPGRID_CHECK(lo_.size() == hi_.size());
  DPGRID_CHECK(!lo_.empty());
}

BoxNd BoxNd::Cube(size_t dims, double lo, double hi) {
  DPGRID_CHECK(dims >= 1);
  return BoxNd(std::vector<double>(dims, lo), std::vector<double>(dims, hi));
}

double BoxNd::Volume() const {
  if (IsEmpty()) return 0.0;
  double v = 1.0;
  for (size_t a = 0; a < dims(); ++a) v *= Extent(a);
  return v;
}

bool BoxNd::IsEmpty() const {
  for (size_t a = 0; a < dims(); ++a) {
    if (hi_[a] <= lo_[a]) return true;
  }
  return false;
}

bool BoxNd::ContainsPoint(const PointNd& p) const {
  DPGRID_DCHECK(p.size() == dims());
  for (size_t a = 0; a < dims(); ++a) {
    if (p[a] < lo_[a] || p[a] >= hi_[a]) return false;
  }
  return true;
}

bool BoxNd::ContainsBox(const BoxNd& other) const {
  DPGRID_DCHECK(other.dims() == dims());
  if (other.IsEmpty()) return true;
  for (size_t a = 0; a < dims(); ++a) {
    if (other.lo_[a] < lo_[a] || other.hi_[a] > hi_[a]) return false;
  }
  return true;
}

BoxNd BoxNd::Intersection(const BoxNd& other) const {
  DPGRID_DCHECK(other.dims() == dims());
  std::vector<double> lo(dims());
  std::vector<double> hi(dims());
  for (size_t a = 0; a < dims(); ++a) {
    lo[a] = std::max(lo_[a], other.lo_[a]);
    hi[a] = std::min(hi_[a], other.hi_[a]);
  }
  return BoxNd(std::move(lo), std::move(hi));
}

double BoxNd::OverlapFraction(const BoxNd& other) const {
  double v = Volume();
  if (v <= 0.0) return 0.0;
  return Intersection(other).Volume() / v;
}

std::string BoxNd::ToString() const {
  std::string out;
  char buf[64];
  for (size_t a = 0; a < dims(); ++a) {
    std::snprintf(buf, sizeof(buf), "%s[%g,%g)", a == 0 ? "" : "x", lo_[a],
                  hi_[a]);
    out += buf;
  }
  return out;
}

bool operator==(const BoxNd& a, const BoxNd& b) {
  return a.lo() == b.lo() && a.hi() == b.hi();
}

}  // namespace dpgrid
