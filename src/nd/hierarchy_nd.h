#ifndef DPGRID_ND_HIERARCHY_ND_H_
#define DPGRID_ND_HIERARCHY_ND_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/random.h"
#include "dp/budget.h"
#include "nd/grid_nd.h"
#include "nd/synopsis_nd.h"

namespace dpgrid {

/// Options for a d-dimensional grid hierarchy.
struct HierarchyNdOptions {
  /// Leaf per-axis grid size; must be divisible by branching^(depth-1).
  int leaf_size = 64;
  /// Per-axis branching factor (each cell splits into branching^d children).
  int branching = 2;
  /// Number of levels; 1 = flat grid.
  int depth = 2;
  /// Apply constrained inference across levels.
  bool constrained_inference = true;
};

/// A multi-level d-dimensional grid hierarchy with constrained inference —
/// used by the dimensionality ablation to demonstrate the paper's §IV-C
/// prediction: the benefit of hierarchies over flat grids shrinks as d
/// grows (each of the query's 2d border hyperplanes must be answered by
/// leaves, and the border is a growing fraction of the query).
class HierarchyNd : public SynopsisNd {
 public:
  HierarchyNd(const DatasetNd& dataset, PrivacyBudget& budget, Rng& rng,
              const HierarchyNdOptions& options = {});

  HierarchyNd(const DatasetNd& dataset, double epsilon, Rng& rng,
              const HierarchyNdOptions& options = {});

  /// Snapshot-store restore: adopts the refined leaf grid and its prefix
  /// index without recomputation.
  static std::unique_ptr<HierarchyNd> Restore(HierarchyNdOptions options,
                                              GridNd leaf,
                                              PrefixSumNd prefix);

  double Answer(const BoxNd& query) const override;
  void AnswerBatch(std::span<const BoxNd> queries,
                   std::span<double> out) const override;
  std::string Name() const override;

  size_t dims() const override { return dims_; }

  /// Per-axis grid size of level l (0 = coarsest).
  int LevelSize(int level) const;

  /// Post-inference leaf grid.
  const GridNd& leaf_counts() const { return *leaf_; }

  const HierarchyNdOptions& options() const { return options_; }

  /// The prefix-sum index over the leaf grid (persisted by snapshots).
  const PrefixSumNd& prefix() const { return *prefix_; }

 private:
  HierarchyNd() = default;

  void Build(const DatasetNd& dataset, PrivacyBudget& budget, Rng& rng);

  HierarchyNdOptions options_;
  size_t dims_ = 0;
  std::optional<GridNd> leaf_;
  std::optional<PrefixSumNd> prefix_;
};

}  // namespace dpgrid

#endif  // DPGRID_ND_HIERARCHY_ND_H_
