#ifndef DPGRID_ND_WORKLOAD_ND_H_
#define DPGRID_ND_WORKLOAD_ND_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "nd/box_nd.h"

namespace dpgrid {

/// A d-dimensional query workload grouped by size, mirroring the paper's
/// 2-D methodology: each size doubles every extent of the previous one.
struct WorkloadNd {
  std::vector<std::string> size_labels;
  std::vector<std::vector<BoxNd>> queries;

  size_t num_sizes() const { return queries.size(); }
};

/// Generates the workload; `q_max_extents` gives the largest query's extent
/// per axis, and every query lies fully inside the domain.
WorkloadNd GenerateWorkloadNd(const BoxNd& domain,
                              const std::vector<double>& q_max_extents,
                              int num_sizes, int per_size, Rng& rng);

}  // namespace dpgrid

#endif  // DPGRID_ND_WORKLOAD_ND_H_
