#include "nd/uniform_grid_nd.h"

#include "common/check.h"

namespace dpgrid {

UniformGridNd::UniformGridNd(const DatasetNd& dataset, PrivacyBudget& budget,
                             Rng& rng, const UniformGridNdOptions& options)
    : options_(options) {
  Build(dataset, budget, rng);
}

UniformGridNd::UniformGridNd(const DatasetNd& dataset, double epsilon,
                             Rng& rng, const UniformGridNdOptions& options)
    : options_(options) {
  PrivacyBudget budget(epsilon);
  Build(dataset, budget, rng);
}

void UniformGridNd::Build(const DatasetNd& dataset, PrivacyBudget& budget,
                          Rng& rng) {
  grid_size_ = options_.grid_size;
  if (grid_size_ <= 0) {
    grid_size_ = ChooseUniformGridSizeNd(
        static_cast<double>(dataset.size()), budget.total(), dataset.dims(),
        options_.guideline_c);
  }
  DPGRID_CHECK(grid_size_ >= 1);
  std::vector<size_t> sizes(dataset.dims(),
                            static_cast<size_t>(grid_size_));
  noisy_.emplace(GridNd::FromDataset(dataset, sizes));
  const double eps = budget.SpendRemaining("ugnd/cell-counts");
  noisy_->AddLaplaceNoise(eps, rng);
  prefix_.emplace(noisy_->values(), noisy_->sizes());
}

std::unique_ptr<UniformGridNd> UniformGridNd::Restore(
    UniformGridNdOptions options, int grid_size, GridNd noisy,
    PrefixSumNd prefix) {
  DPGRID_CHECK(grid_size >= 1);
  DPGRID_CHECK(noisy.dims() == prefix.dims());
  for (size_t a = 0; a < noisy.dims(); ++a) {
    DPGRID_CHECK(noisy.sizes()[a] == static_cast<size_t>(grid_size));
    DPGRID_CHECK(prefix.sizes()[a] == noisy.sizes()[a]);
  }
  std::unique_ptr<UniformGridNd> ug(new UniformGridNd());
  ug->options_ = options;
  ug->grid_size_ = grid_size;
  ug->noisy_.emplace(std::move(noisy));
  ug->prefix_.emplace(std::move(prefix));
  return ug;
}

double UniformGridNd::Answer(const BoxNd& query) const {
  double lo[PrefixSumNd::kMaxDims];
  double hi[PrefixSumNd::kMaxDims];
  noisy_->ToCellCoords(query, lo, hi);
  return prefix_->FractionalSum(lo, hi);
}

void UniformGridNd::AnswerBatch(std::span<const BoxNd> queries,
                                std::span<double> out) const {
  AnswerBatchLeafGridNd(*noisy_, *prefix_, queries, out);
}

std::string UniformGridNd::Name() const {
  return "U" + std::to_string(noisy_->dims()) + "d-" +
         std::to_string(grid_size_);
}

}  // namespace dpgrid
