#include "nd/guidelines_nd.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace dpgrid {

double UniformGridSizeRealNd(double n, double epsilon, size_t dims,
                             double c) {
  DPGRID_CHECK(dims >= 1);
  DPGRID_CHECK(epsilon > 0.0);
  DPGRID_CHECK(c > 0.0);
  if (n <= 0.0) return 0.0;
  const double d = static_cast<double>(dims);
  return std::pow(2.0 * n * epsilon / (d * c), 2.0 / (d + 2.0));
}

int ChooseUniformGridSizeNd(double n, double epsilon, size_t dims, double c,
                            int min_size) {
  DPGRID_CHECK(min_size >= 1);
  double m = UniformGridSizeRealNd(n, epsilon, dims, c);
  return std::max(min_size, static_cast<int>(std::lround(m)));
}

int ChooseAdaptiveLevel1SizeNd(double n, double epsilon, size_t dims,
                               double c) {
  double m = UniformGridSizeRealNd(n, epsilon, dims, c) / 4.0;
  const int floor_size = dims <= 2 ? 10 : (dims == 3 ? 6 : 4);
  return std::max(floor_size, static_cast<int>(std::lround(m)));
}

int ChooseAdaptiveLevel2SizeNd(double noisy_count, double remaining_epsilon,
                               size_t dims, double c2) {
  DPGRID_CHECK(remaining_epsilon > 0.0);
  DPGRID_CHECK(c2 > 0.0);
  if (noisy_count <= 0.0) return 1;
  const double d = static_cast<double>(dims);
  double m2 = std::pow(2.0 * noisy_count * remaining_epsilon / (d * c2),
                       2.0 / (d + 2.0));
  return std::max(1, static_cast<int>(std::ceil(m2)));
}

}  // namespace dpgrid
