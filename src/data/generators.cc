#include "data/generators.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace dpgrid {

namespace {

Point2 ClampIntoDomain(Point2 p, const Rect& domain) {
  p.x = std::clamp(p.x, domain.xlo, domain.xhi);
  p.y = std::clamp(p.y, domain.ylo, domain.yhi);
  return p;
}

// Zipf-style weights w_k = 1 / (k+1)^s.
std::vector<double> ZipfWeights(size_t count, double s) {
  std::vector<double> w(count);
  for (size_t k = 0; k < count; ++k) {
    w[k] = 1.0 / std::pow(static_cast<double>(k + 1), s);
  }
  return w;
}

// Random clusters with centers uniform in `area` and stddevs uniform in
// [s_lo, s_hi], weighted Zipf(s_zipf).
std::vector<Cluster> RandomClusters(const Rect& area, size_t count,
                                    double s_lo, double s_hi, double s_zipf,
                                    Rng& rng) {
  std::vector<double> weights = ZipfWeights(count, s_zipf);
  std::vector<Cluster> clusters(count);
  for (size_t k = 0; k < count; ++k) {
    clusters[k].cx = rng.Uniform(area.xlo, area.xhi);
    clusters[k].cy = rng.Uniform(area.ylo, area.yhi);
    clusters[k].sx = rng.Uniform(s_lo, s_hi);
    clusters[k].sy = rng.Uniform(s_lo, s_hi);
    clusters[k].weight = weights[k];
  }
  return clusters;
}

}  // namespace

Dataset MakeUniformDataset(const Rect& domain, int64_t n, Rng& rng) {
  DPGRID_CHECK(n >= 0);
  std::vector<Point2> points;
  points.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    points.push_back(Point2{rng.Uniform(domain.xlo, domain.xhi),
                            rng.Uniform(domain.ylo, domain.yhi)});
  }
  return Dataset(domain, std::move(points));
}

Dataset MakeGaussianMixture(const Rect& domain, int64_t n,
                            const std::vector<Cluster>& clusters,
                            double background_fraction, Rng& rng) {
  DPGRID_CHECK(n >= 0);
  DPGRID_CHECK(background_fraction >= 0.0 && background_fraction <= 1.0);
  DPGRID_CHECK(!clusters.empty() || background_fraction == 1.0);
  std::vector<double> weights;
  weights.reserve(clusters.size());
  for (const Cluster& c : clusters) weights.push_back(c.weight);

  std::vector<Point2> points;
  points.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    if (clusters.empty() || rng.Uniform01() < background_fraction) {
      points.push_back(Point2{rng.Uniform(domain.xlo, domain.xhi),
                              rng.Uniform(domain.ylo, domain.yhi)});
      continue;
    }
    const Cluster& c = clusters[rng.Discrete(weights)];
    Point2 p{rng.Gaussian(c.cx, c.sx), rng.Gaussian(c.cy, c.sy)};
    points.push_back(ClampIntoDomain(p, domain));
  }
  return Dataset(domain, std::move(points));
}

Dataset MakeRoadLike(int64_t n, Rng& rng) {
  const Rect domain{0.0, 0.0, 25.0, 20.0};
  // Two dense "states" (paper: Washington + New Mexico) with quasi-uniform
  // road grids plus town clusters; the rest of the domain is blank.
  const Rect state_a{1.5, 10.5, 10.5, 19.0};
  const Rect state_b{13.0, 1.0, 23.5, 9.5};

  auto town_clusters = [&rng](const Rect& area, size_t count) {
    return RandomClusters(area, count, 0.15, 0.45, 0.6, rng);
  };
  std::vector<Cluster> towns_a = town_clusters(state_a, 14);
  std::vector<Cluster> towns_b = town_clusters(state_b, 12);
  std::vector<double> weights_a;
  std::vector<double> weights_b;
  for (const Cluster& c : towns_a) weights_a.push_back(c.weight);
  for (const Cluster& c : towns_b) weights_b.push_back(c.weight);

  auto sample_state = [&rng](const Rect& area,
                             const std::vector<Cluster>& towns,
                             const std::vector<double>& weights) {
    // Road intersections: largely uniform within the state (the paper calls
    // road "unusually high uniformity"), with some town densification.
    if (rng.Uniform01() < 0.75) {
      return Point2{rng.Uniform(area.xlo, area.xhi),
                    rng.Uniform(area.ylo, area.yhi)};
    }
    const Cluster& c = towns[rng.Discrete(weights)];
    Point2 p{rng.Gaussian(c.cx, c.sx), rng.Gaussian(c.cy, c.sy)};
    p.x = std::clamp(p.x, area.xlo, area.xhi);
    p.y = std::clamp(p.y, area.ylo, area.yhi);
    return p;
  };

  std::vector<Point2> points;
  points.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    const double pick = rng.Uniform01();
    if (pick < 0.55) {
      points.push_back(sample_state(state_a, towns_a, weights_a));
    } else if (pick < 0.98) {
      points.push_back(sample_state(state_b, towns_b, weights_b));
    } else {
      points.push_back(Point2{rng.Uniform(domain.xlo, domain.xhi),
                              rng.Uniform(domain.ylo, domain.yhi)});
    }
  }
  return Dataset(domain, std::move(points));
}

Dataset MakeCheckinLike(int64_t n, Rng& rng) {
  const Rect domain{-180.0, -65.0, 180.0, 85.0};
  // Power-law "cities" concentrated in a land band; oceans stay blank.
  const Rect land_band{-170.0, -50.0, 170.0, 75.0};
  std::vector<Cluster> cities =
      RandomClusters(land_band, 80, 0.8, 6.0, 1.1, rng);
  return MakeGaussianMixture(domain, n, cities,
                             /*background_fraction=*/0.015, rng);
}

Dataset MakeLandmarkLike(int64_t n, Rng& rng) {
  const Rect domain{-130.0, 20.0, -70.0, 60.0};
  const Rect populated{-125.0, 25.0, -72.0, 50.0};
  std::vector<Cluster> towns =
      RandomClusters(populated, 350, 0.2, 1.5, 0.8, rng);
  return MakeGaussianMixture(domain, n, towns,
                             /*background_fraction=*/0.08, rng);
}

Dataset MakeStorageLike(int64_t n, Rng& rng) {
  const Rect domain{-130.0, 20.0, -70.0, 60.0};
  const Rect populated{-125.0, 25.0, -72.0, 50.0};
  std::vector<Cluster> sites =
      RandomClusters(populated, 150, 0.3, 1.2, 0.9, rng);
  return MakeGaussianMixture(domain, n, sites,
                             /*background_fraction=*/0.10, rng);
}

std::vector<DatasetSpec> PaperDatasets(double scale) {
  DPGRID_CHECK(scale > 0.0 && scale <= 1.0);
  auto scaled = [scale](int64_t n, int64_t floor_n) {
    return std::max<int64_t>(floor_n,
                             static_cast<int64_t>(std::llround(
                                 static_cast<double>(n) * scale)));
  };
  return {
      // Table II: name, N, q6 size.
      DatasetSpec{"road", scaled(1600000, 10000), 16.0, 16.0, &MakeRoadLike},
      DatasetSpec{"checkin", scaled(1000000, 10000), 192.0, 96.0,
                  &MakeCheckinLike},
      DatasetSpec{"landmark", scaled(870000, 10000), 40.0, 20.0,
                  &MakeLandmarkLike},
      DatasetSpec{"storage", scaled(9000, 2000), 40.0, 20.0,
                  &MakeStorageLike},
  };
}

}  // namespace dpgrid
