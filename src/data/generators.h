#ifndef DPGRID_DATA_GENERATORS_H_
#define DPGRID_DATA_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "geo/dataset.h"

namespace dpgrid {

/// One Gaussian component of a mixture generator.
struct Cluster {
  double cx = 0.0;
  double cy = 0.0;
  double sx = 1.0;  // stddev along x
  double sy = 1.0;  // stddev along y
  double weight = 1.0;
};

/// N points uniform over the domain.
Dataset MakeUniformDataset(const Rect& domain, int64_t n, Rng& rng);

/// A Gaussian mixture with a uniform background: each point is uniform over
/// the domain with probability `background_fraction`, otherwise sampled from
/// a weight-proportional cluster and clamped into the domain.
Dataset MakeGaussianMixture(const Rect& domain, int64_t n,
                            const std::vector<Cluster>& clusters,
                            double background_fraction, Rng& rng);

/// Synthetic stand-ins for the paper's four evaluation datasets (§V-A).
/// Each matches the paper dataset's size, domain extent and qualitative
/// distribution; see DESIGN.md §2 for the substitution rationale.

/// "road"-like: two dense state-shaped regions with quasi-uniform interiors
/// plus town clusters; large blank areas; 25 × 20 domain. Paper N = 1.6M.
Dataset MakeRoadLike(int64_t n, Rng& rng);

/// "checkin"-like: world-map style power-law city clusters over a 360 × 150
/// domain with mostly-empty oceans. Paper N = 1M.
Dataset MakeCheckinLike(int64_t n, Rng& rng);

/// "landmark"-like: several hundred population-style clusters over a
/// 60 × 40 domain with a moderate background. Paper N = 0.87M.
Dataset MakeLandmarkLike(int64_t n, Rng& rng);

/// "storage"-like: the same spatial style as landmark but tiny
/// (paper N = 9000); exercises the small-N regime.
Dataset MakeStorageLike(int64_t n, Rng& rng);

/// Everything a bench needs to run one paper dataset.
struct DatasetSpec {
  const char* name;
  int64_t n;           // paper dataset size (already scaled)
  double q_max_w;      // paper's q6 width (Table II)
  double q_max_h;      // paper's q6 height
  Dataset (*make)(int64_t, Rng&);
};

/// The four paper datasets with Table II parameters. `scale` in (0, 1]
/// shrinks every dataset proportionally (storage has a floor of 2000 points)
/// for quick runs.
std::vector<DatasetSpec> PaperDatasets(double scale = 1.0);

}  // namespace dpgrid

#endif  // DPGRID_DATA_GENERATORS_H_
