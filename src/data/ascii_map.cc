#include "data/ascii_map.h"

#include <algorithm>

#include "grid/grid_counts.h"

namespace dpgrid {

std::string RenderAsciiHeatmap(const Dataset& dataset, size_t width,
                               size_t height) {
  GridCounts grid = GridCounts::FromDataset(dataset, width, height);
  double max_count = 1.0;
  for (double v : grid.values()) max_count = std::max(max_count, v);
  static const char kShades[] = " .:-=+*#%@";
  std::string out;
  out.reserve((width + 3) * height);
  for (size_t iy = height; iy-- > 0;) {
    out += "  ";
    for (size_t ix = 0; ix < width; ++ix) {
      double frac = grid.at(ix, iy) / max_count;
      int shade = static_cast<int>(frac * 9.0 + 0.5);
      out += kShades[std::clamp(shade, 0, 9)];
    }
    out += '\n';
  }
  return out;
}

}  // namespace dpgrid
