#ifndef DPGRID_DATA_ASCII_MAP_H_
#define DPGRID_DATA_ASCII_MAP_H_

#include <string>

#include "geo/dataset.h"

namespace dpgrid {

/// Renders a w × h ASCII density heatmap of a dataset (top row = highest
/// y). Shades run from ' ' (empty) to '@' (the densest cell). Used to
/// reproduce the paper's Figure 1 dataset illustrations and by the
/// private_heatmap example.
std::string RenderAsciiHeatmap(const Dataset& dataset, size_t width,
                               size_t height);

}  // namespace dpgrid

#endif  // DPGRID_DATA_ASCII_MAP_H_
