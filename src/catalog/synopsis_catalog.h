#ifndef DPGRID_CATALOG_SYNOPSIS_CATALOG_H_
#define DPGRID_CATALOG_SYNOPSIS_CATALOG_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "query/query_engine.h"
#include "store/serving.h"
#include "store/snapshot_store.h"

namespace dpgrid {

/// Outcome of routing a query batch to a catalog entry.
enum class CatalogStatus : uint32_t {
  kOk = 0,
  /// No such name, or the name exists but nothing has been published into
  /// its slot yet. Callers must surface this as an error — never as a
  /// zero-filled answer — so an unpublished slot cannot masquerade as an
  /// empty dataset.
  kNotFound = 1,
  /// The entry serves a synopsis of a different dimensionality than the
  /// queries (e.g. 3-d boxes against a 2-D grid).
  kWrongDims = 2,
};

/// One row of SynopsisCatalog::List().
struct CatalogEntryInfo {
  std::string name;
  /// Version currently served; 0 if the slot exists but is unpublished.
  uint64_t version = 0;
  /// 2 for 2-D synopses, d for d-dimensional ones, 0 if unpublished.
  uint32_t dims = 0;
  /// Synopsis::Name() of the served version (e.g. "U256"); empty if
  /// unpublished.
  std::string synopsis_name;
  double epsilon = 0.0;
  std::string label;
};

/// A named collection of hot-swappable serving slots: the multi-tenant
/// serving plane between a SnapshotStore directory and the query server.
///
/// Each name owns a ServingSynopsis (2-D) and a ServingSynopsisNd slot;
/// whichever matches the published snapshot's kind is populated. LoadAll
/// bootstraps by loading the latest durable version of every name in the
/// store, and Reload/ReloadAll pick up versions published later by another
/// process — so a publisher writing `.dpgs` files makes them servable
/// without a server restart. In-process publishers can instead write
/// straight into a slot (Slot2D/SlotNd hand out the ServingSynopsis that
/// SnapshotPublisher takes as its sink), making new versions visible to
/// readers at the cost of one pointer swap.
///
/// Thread safety: all methods are safe to call concurrently. Slots are
/// created under a mutex and never removed, so the AnswerBatch fast path
/// takes the mutex only for the name lookup; the answering itself runs on
/// the slot's lock-free RCU snapshot, and every batch is answered by
/// exactly one version (ServingSynopsis acquires once per batch).
class SynopsisCatalog {
 public:
  /// `store` may be nullptr for a purely in-process catalog (slots are then
  /// fed only through Slot2D/SlotNd); it must outlive the catalog.
  explicit SynopsisCatalog(SnapshotStore* store) : store_(store) {}

  SynopsisCatalog(const SynopsisCatalog&) = delete;
  SynopsisCatalog& operator=(const SynopsisCatalog&) = delete;

  /// Bootstraps every name found in the store: loads each name's latest
  /// version into its slot. Returns the number of versions installed.
  /// Per-name failures (e.g. one corrupt file) are appended to *errors
  /// (may be nullptr) and do not stop the sweep.
  size_t LoadAll(std::string* errors);

  /// Installs `name`'s latest durable version if it is newer than what the
  /// slot currently serves. Returns true if a new version was installed;
  /// false with *error empty means "already up to date", false with
  /// *error set means the name has no published versions at all or the
  /// load failed.
  bool Reload(const std::string& name, std::string* error);

  /// Reload() over every name in the store (picks up brand-new names too).
  /// Returns the number of versions installed.
  size_t ReloadAll(std::string* errors);

  /// The 2-D serving slot for `name`, created empty if absent — the sink an
  /// in-process SnapshotPublisher plugs into. The pointer stays valid for
  /// the catalog's lifetime.
  ///
  /// A name's versions must form ONE monotonic sequence: store-assigned
  /// (SnapshotPublisher does this), or auto-incremented within a single
  /// slot. The 2-D and N-d slots auto-increment independently, so a
  /// storeless pipeline that republishes a name as the other kind must
  /// pass explicit versions continuing the sequence, or the newest-wins
  /// routing cannot tell which kind is current.
  ServingSynopsis* Slot2D(const std::string& name);

  /// N-d counterpart.
  ServingSynopsisNd* SlotNd(const std::string& name);

  /// Snapshot of every entry, sorted by name.
  std::vector<CatalogEntryInfo> List() const;

  /// Answers a 2-D batch against `name`'s current version; *version
  /// receives the (single) version that answered. `out` must match
  /// `queries` in length.
  CatalogStatus AnswerBatch(const QueryEngine& engine, const std::string& name,
                            std::span<const Rect> queries,
                            std::span<double> out, uint64_t* version) const;

  /// N-d counterpart; all queries must share one dimensionality `dims`,
  /// which must match the served synopsis. A batch containing a box of a
  /// different dimensionality returns kWrongDims.
  CatalogStatus AnswerBatchNd(const QueryEngine& engine,
                              const std::string& name, size_t dims,
                              std::span<const BoxNd> queries,
                              std::span<double> out, uint64_t* version) const;

  /// Number of names with a slot (published or not).
  size_t size() const;

  /// Lifecycle events for the METRICS op: reload sweeps run, versions
  /// installed through this catalog, and (when a store is attached) the
  /// store's publish count — each with the wall-clock second of its
  /// latest occurrence.
  std::vector<obs::EventSnapshot> EventsSnapshot() const;

 private:
  struct Slot {
    ServingSynopsis serving2d;
    ServingSynopsisNd serving_nd;
  };

  Slot* GetOrCreateSlot(const std::string& name);
  Slot* FindSlot(const std::string& name) const;
  /// Installs a decoded snapshot into `slot` at `version` unless the slot
  /// already serves that version or newer; returns whether it installed.
  bool Install(Slot* slot, DecodedSnapshot&& decoded, uint64_t version);

  SnapshotStore* store_;
  mutable std::mutex mu_;
  // unique_ptr so slot addresses survive map rehash/rebalance; entries are
  // never erased.
  std::map<std::string, std::unique_ptr<Slot>> slots_;

  // Lifecycle counters behind EventsSnapshot().
  obs::EventCounter reload_sweeps_;
  obs::EventCounter versions_installed_;
};

}  // namespace dpgrid

#endif  // DPGRID_CATALOG_SYNOPSIS_CATALOG_H_
