#include "catalog/synopsis_catalog.h"

#include <algorithm>
#include <utility>

namespace dpgrid {

namespace {

// The one place that decides which representation serves a name: acquire
// both slots once, newest version wins, 2-D wins ties. List, AnswerBatch,
// and AnswerBatchNd all route through this so they can never disagree.
struct SlotChoice {
  std::shared_ptr<const ServingSynopsis::Snapshot> snap2d;
  std::shared_ptr<const ServingSynopsisNd::Snapshot> snap_nd;
  uint64_t version = 0;  // 0 = nothing published under this name
  bool use_2d = false;
};

SlotChoice ChooseNewest(const ServingSynopsis& serving2d,
                        const ServingSynopsisNd& serving_nd) {
  SlotChoice c;
  c.snap2d = serving2d.Acquire();
  c.snap_nd = serving_nd.Acquire();
  const uint64_t v2d = c.snap2d != nullptr ? c.snap2d->version : 0;
  const uint64_t vnd = c.snap_nd != nullptr ? c.snap_nd->version : 0;
  c.version = std::max(v2d, vnd);
  c.use_2d = v2d != 0 && v2d >= vnd;
  return c;
}

}  // namespace

SynopsisCatalog::Slot* SynopsisCatalog::GetOrCreateSlot(
    const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Slot>& slot = slots_[name];
  if (slot == nullptr) slot = std::make_unique<Slot>();
  return slot.get();
}

SynopsisCatalog::Slot* SynopsisCatalog::FindSlot(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = slots_.find(name);
  return it != slots_.end() ? it->second.get() : nullptr;
}

bool SynopsisCatalog::Install(Slot* slot, DecodedSnapshot&& decoded,
                              uint64_t version) {
  // PublishIfNewer, not Publish: between Reload's version check and the
  // store load finishing, an in-process publisher may have pushed a newer
  // version into this slot — a plain install would regress it.
  bool installed;
  if (decoded.synopsis != nullptr) {
    installed = slot->serving2d.PublishIfNewer(
        std::shared_ptr<const Synopsis>(std::move(decoded.synopsis)),
        std::move(decoded.meta), version);
  } else {
    installed = slot->serving_nd.PublishIfNewer(
        std::shared_ptr<const SynopsisNd>(std::move(decoded.synopsis_nd)),
        std::move(decoded.meta), version);
  }
  if (installed) versions_installed_.Record();
  return installed;
}

bool SynopsisCatalog::Reload(const std::string& name, std::string* error) {
  if (error != nullptr) error->clear();
  if (store_ == nullptr) {
    if (error != nullptr) *error = "catalog has no snapshot store";
    return false;
  }
  const std::vector<uint64_t> versions = store_->ListVersions(name);
  if (versions.empty()) {
    // Distinguish "no such name" from "already up to date" — a reload
    // loop polling a misspelled name must see an error, not silence.
    if (error != nullptr) {
      *error = "no snapshots named '" + name + "' in " + store_->directory();
    }
    return false;
  }
  const uint64_t latest = versions.back();
  Slot* slot = GetOrCreateSlot(name);
  const uint64_t serving = std::max(slot->serving2d.current_version(),
                                    slot->serving_nd.current_version());
  if (latest <= serving) return false;
  DecodedSnapshot decoded;
  if (!store_->Load(name, latest, &decoded, error)) return false;
  return Install(slot, std::move(decoded), latest);
}

size_t SynopsisCatalog::LoadAll(std::string* errors) {
  return ReloadAll(errors);
}

size_t SynopsisCatalog::ReloadAll(std::string* errors) {
  if (store_ == nullptr) return 0;
  reload_sweeps_.Record();
  size_t installed = 0;
  // One directory scan for the whole sweep; per-name Reload would rescan
  // the directory once per name.
  for (const auto& [name, latest] : store_->ListLatestVersions()) {
    Slot* slot = GetOrCreateSlot(name);
    const uint64_t serving = std::max(slot->serving2d.current_version(),
                                      slot->serving_nd.current_version());
    if (latest <= serving) continue;
    DecodedSnapshot decoded;
    std::string error;
    if (!store_->Load(name, latest, &decoded, &error)) {
      if (errors != nullptr) {
        if (!errors->empty()) errors->append("; ");
        errors->append(name + ": " + error);
      }
      continue;
    }
    if (Install(slot, std::move(decoded), latest)) ++installed;
  }
  return installed;
}

ServingSynopsis* SynopsisCatalog::Slot2D(const std::string& name) {
  return &GetOrCreateSlot(name)->serving2d;
}

ServingSynopsisNd* SynopsisCatalog::SlotNd(const std::string& name) {
  return &GetOrCreateSlot(name)->serving_nd;
}

std::vector<CatalogEntryInfo> SynopsisCatalog::List() const {
  std::vector<std::pair<std::string, Slot*>> entries;
  {
    std::lock_guard<std::mutex> lock(mu_);
    entries.reserve(slots_.size());
    for (const auto& [name, slot] : slots_) {
      entries.emplace_back(name, slot.get());
    }
  }
  std::vector<CatalogEntryInfo> out;
  out.reserve(entries.size());
  for (const auto& [name, slot] : entries) {
    CatalogEntryInfo info;
    info.name = name;
    // A name serves through at most one of the two slots; if both have
    // history (a name that changed kind), report exactly what the query
    // paths would serve.
    const SlotChoice c = ChooseNewest(slot->serving2d, slot->serving_nd);
    if (c.version != 0) {
      info.version = c.version;
      if (c.use_2d) {
        info.dims = 2;
        info.synopsis_name = c.snap2d->synopsis->Name();
        info.epsilon = c.snap2d->meta.epsilon;
        info.label = c.snap2d->meta.label;
      } else {
        info.dims = static_cast<uint32_t>(c.snap_nd->synopsis->dims());
        info.synopsis_name = c.snap_nd->synopsis->Name();
        info.epsilon = c.snap_nd->meta.epsilon;
        info.label = c.snap_nd->meta.label;
      }
    }
    out.push_back(std::move(info));
  }
  return out;
}

CatalogStatus SynopsisCatalog::AnswerBatch(const QueryEngine& engine,
                                           const std::string& name,
                                           std::span<const Rect> queries,
                                           std::span<double> out,
                                           uint64_t* version) const {
  Slot* slot = FindSlot(name);
  if (slot == nullptr) return CatalogStatus::kNotFound;
  // Serve whichever representation is current (a name republished as the
  // other kind never keeps answering from its stale older kind); the
  // whole batch is answered by the single acquired snapshot.
  const SlotChoice c = ChooseNewest(slot->serving2d, slot->serving_nd);
  if (c.version == 0) return CatalogStatus::kNotFound;
  if (c.use_2d) {
    engine.AnswerAll(*c.snap2d->synopsis, queries, out);
    if (version != nullptr) *version = c.version;
    return CatalogStatus::kOk;
  }
  // A 2-dimensional N-d synopsis (e.g. a UniformGridNd over a 2-attribute
  // dataset) answers the same rectangle queries through the Nd path; only
  // a genuine dims mismatch errors. The conversion allocates two vectors
  // per query (BoxNd owns its bounds) — acceptable for this fallback; a
  // deployment hitting it at scale should publish the name as a 2-D kind.
  if (c.snap_nd->synopsis->dims() != 2) return CatalogStatus::kWrongDims;
  std::vector<BoxNd> boxes;
  boxes.reserve(queries.size());
  for (const Rect& q : queries) {
    boxes.emplace_back(std::vector<double>{q.xlo, q.ylo},
                       std::vector<double>{q.xhi, q.yhi});
  }
  engine.AnswerAll(*c.snap_nd->synopsis, boxes, out);
  if (version != nullptr) *version = c.version;
  return CatalogStatus::kOk;
}

CatalogStatus SynopsisCatalog::AnswerBatchNd(const QueryEngine& engine,
                                             const std::string& name,
                                             size_t dims,
                                             std::span<const BoxNd> queries,
                                             std::span<double> out,
                                             uint64_t* version) const {
  // Every box must actually have the claimed dimensionality — the paths
  // below index lo(a)/hi(a) up to `dims`, which is unchecked in BoxNd.
  for (const BoxNd& q : queries) {
    if (q.dims() != dims) return CatalogStatus::kWrongDims;
  }
  Slot* slot = FindSlot(name);
  if (slot == nullptr) return CatalogStatus::kNotFound;
  const SlotChoice c = ChooseNewest(slot->serving2d, slot->serving_nd);
  if (c.version == 0) return CatalogStatus::kNotFound;
  if (c.use_2d) {
    // 2-d boxes against a 2-D synopsis are the same rectangle queries in
    // the other representation.
    if (dims != 2) return CatalogStatus::kWrongDims;
    std::vector<Rect> rects;
    rects.reserve(queries.size());
    for (const BoxNd& q : queries) {
      rects.push_back(Rect{q.lo(0), q.lo(1), q.hi(0), q.hi(1)});
    }
    engine.AnswerAll(*c.snap2d->synopsis, rects, out);
    if (version != nullptr) *version = c.version;
    return CatalogStatus::kOk;
  }
  if (c.snap_nd->synopsis->dims() != dims) return CatalogStatus::kWrongDims;
  engine.AnswerAll(*c.snap_nd->synopsis, queries, out);
  if (version != nullptr) *version = c.version;
  return CatalogStatus::kOk;
}

size_t SynopsisCatalog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_.size();
}

std::vector<obs::EventSnapshot> SynopsisCatalog::EventsSnapshot() const {
  std::vector<obs::EventSnapshot> events;
  events.push_back(obs::SnapshotEvent("catalog_reload_sweeps", reload_sweeps_));
  events.push_back(
      obs::SnapshotEvent("catalog_versions_installed", versions_installed_));
  if (store_ != nullptr) {
    events.push_back(
        obs::SnapshotEvent("store_publishes", store_->publish_events()));
  }
  return events;
}

}  // namespace dpgrid
