#ifndef DPGRID_WAVELET_PRIVELET_H_
#define DPGRID_WAVELET_PRIVELET_H_

#include <optional>
#include <string>
#include <vector>

#include "common/random.h"
#include "dp/budget.h"
#include "geo/dataset.h"
#include "grid/grid_counts.h"
#include "grid/synopsis.h"
#include "index/prefix_sum2d.h"

namespace dpgrid {

/// Options for the Privelet synopsis.
struct PriveletOptions {
  /// Grid size m for the base cells (W_m in the paper's notation). If 0,
  /// chosen by Guideline 1 — the paper stresses Privelet also needs a good
  /// base grid size.
  int grid_size = 0;

  /// Guideline-1 constant used when grid_size == 0.
  double guideline_c = 10.0;
};

/// The Privelet method (Xiao, Wang, Gehrke, TKDE'11), 2-D standard
/// decomposition, as used for the W_m baselines in the paper's Figures 3–6.
///
/// The m × m frequency matrix is padded to powers of two, Haar-transformed
/// along rows then columns, each coefficient receives Laplace noise
/// proportional to the generalized sensitivity (hx+1)(hy+1) divided by the
/// coefficient's weight Wx·Wy, and the noisy matrix is reconstructed by the
/// inverse transform. Range queries then enjoy the wavelet's
/// noise-cancellation.
class Privelet : public Synopsis {
 public:
  Privelet(const Dataset& dataset, PrivacyBudget& budget, Rng& rng,
           const PriveletOptions& options = {});

  Privelet(const Dataset& dataset, double epsilon, Rng& rng,
           const PriveletOptions& options = {});

  double Answer(const Rect& query) const override;
  std::string Name() const override;
  std::vector<SynopsisCell> ExportCells() const override;

  int grid_size() const { return static_cast<int>(noisy_->nx()); }

  /// Reconstructed noisy frequency matrix.
  const GridCounts& noisy_counts() const { return *noisy_; }

 private:
  void Build(const Dataset& dataset, PrivacyBudget& budget, Rng& rng);

  PriveletOptions options_;
  std::optional<GridCounts> noisy_;
  std::optional<PrefixSum2D> prefix_;
};

}  // namespace dpgrid

#endif  // DPGRID_WAVELET_PRIVELET_H_
