#ifndef DPGRID_WAVELET_HAAR_H_
#define DPGRID_WAVELET_HAAR_H_

#include <cstddef>
#include <vector>

namespace dpgrid {

/// True if n is a power of two (n >= 1).
bool IsPowerOfTwo(size_t n);

/// Smallest power of two >= n (n >= 1).
size_t NextPowerOfTwo(size_t n);

/// In-place 1-D Haar decomposition (averaging convention) of a power-of-two
/// length vector.
///
/// Layout after the transform: index 0 holds the overall average; indices
/// [2^l, 2^(l+1)) hold the detail coefficients at level l, each summarizing
/// a block of n/2^l consecutive entries (detail = (avg of left half − avg of
/// right half) / 2). This is the convention used by Privelet: adding 1 to a
/// single entry changes exactly one coefficient per level, by 2^l / n.
void HaarForward(std::vector<double>& v);

/// Inverse of HaarForward.
void HaarInverse(std::vector<double>& v);

/// Haar coefficient weights W(i) for Privelet's generalized sensitivity:
/// W(0) = n and W(i) = n / 2^floor(log2 i). With these weights
/// sum_i W(i)·|Δc_i| = log2(n) + 1 for a unit change of any single entry.
std::vector<double> HaarWeights(size_t n);

/// 2-D standard decomposition on a row-major nx × ny grid (both powers of
/// two): full 1-D transform of every row, then of every column.
void HaarForward2D(std::vector<double>& grid, size_t nx, size_t ny);

/// Inverse of HaarForward2D.
void HaarInverse2D(std::vector<double>& grid, size_t nx, size_t ny);

}  // namespace dpgrid

#endif  // DPGRID_WAVELET_HAAR_H_
