#include "wavelet/haar.h"

#include <cmath>

#include "common/check.h"

namespace dpgrid {

bool IsPowerOfTwo(size_t n) { return n >= 1 && (n & (n - 1)) == 0; }

size_t NextPowerOfTwo(size_t n) {
  DPGRID_CHECK(n >= 1);
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void HaarForward(std::vector<double>& v) {
  const size_t n = v.size();
  DPGRID_CHECK(IsPowerOfTwo(n));
  std::vector<double> tmp(n);
  for (size_t len = n; len > 1; len /= 2) {
    const size_t half = len / 2;
    for (size_t i = 0; i < half; ++i) {
      tmp[i] = (v[2 * i] + v[2 * i + 1]) / 2.0;         // approximation
      tmp[half + i] = (v[2 * i] - v[2 * i + 1]) / 2.0;  // detail
    }
    for (size_t i = 0; i < len; ++i) v[i] = tmp[i];
  }
}

void HaarInverse(std::vector<double>& v) {
  const size_t n = v.size();
  DPGRID_CHECK(IsPowerOfTwo(n));
  std::vector<double> tmp(n);
  for (size_t len = 2; len <= n; len *= 2) {
    const size_t half = len / 2;
    for (size_t i = 0; i < half; ++i) {
      tmp[2 * i] = v[i] + v[half + i];
      tmp[2 * i + 1] = v[i] - v[half + i];
    }
    for (size_t i = 0; i < len; ++i) v[i] = tmp[i];
  }
}

std::vector<double> HaarWeights(size_t n) {
  DPGRID_CHECK(IsPowerOfTwo(n));
  std::vector<double> w(n);
  w[0] = static_cast<double>(n);
  for (size_t i = 1; i < n; ++i) {
    auto level = static_cast<size_t>(std::floor(std::log2(
        static_cast<double>(i))));
    w[i] = static_cast<double>(n) / static_cast<double>(size_t{1} << level);
  }
  return w;
}

void HaarForward2D(std::vector<double>& grid, size_t nx, size_t ny) {
  DPGRID_CHECK(grid.size() == nx * ny);
  DPGRID_CHECK(IsPowerOfTwo(nx) && IsPowerOfTwo(ny));
  std::vector<double> line;
  line.resize(nx);
  for (size_t iy = 0; iy < ny; ++iy) {
    for (size_t ix = 0; ix < nx; ++ix) line[ix] = grid[iy * nx + ix];
    HaarForward(line);
    for (size_t ix = 0; ix < nx; ++ix) grid[iy * nx + ix] = line[ix];
  }
  line.resize(ny);
  for (size_t ix = 0; ix < nx; ++ix) {
    for (size_t iy = 0; iy < ny; ++iy) line[iy] = grid[iy * nx + ix];
    HaarForward(line);
    for (size_t iy = 0; iy < ny; ++iy) grid[iy * nx + ix] = line[iy];
  }
}

void HaarInverse2D(std::vector<double>& grid, size_t nx, size_t ny) {
  DPGRID_CHECK(grid.size() == nx * ny);
  DPGRID_CHECK(IsPowerOfTwo(nx) && IsPowerOfTwo(ny));
  std::vector<double> line;
  line.resize(ny);
  for (size_t ix = 0; ix < nx; ++ix) {
    for (size_t iy = 0; iy < ny; ++iy) line[iy] = grid[iy * nx + ix];
    HaarInverse(line);
    for (size_t iy = 0; iy < ny; ++iy) grid[iy * nx + ix] = line[iy];
  }
  line.resize(nx);
  for (size_t iy = 0; iy < ny; ++iy) {
    for (size_t ix = 0; ix < nx; ++ix) line[ix] = grid[iy * nx + ix];
    HaarInverse(line);
    for (size_t ix = 0; ix < nx; ++ix) grid[iy * nx + ix] = line[ix];
  }
}

}  // namespace dpgrid
