#include "wavelet/privelet.h"

#include <cmath>

#include "common/check.h"
#include "grid/guidelines.h"
#include "wavelet/haar.h"

namespace dpgrid {

Privelet::Privelet(const Dataset& dataset, PrivacyBudget& budget, Rng& rng,
                   const PriveletOptions& options)
    : options_(options) {
  Build(dataset, budget, rng);
}

Privelet::Privelet(const Dataset& dataset, double epsilon, Rng& rng,
                   const PriveletOptions& options)
    : options_(options) {
  PrivacyBudget budget(epsilon);
  Build(dataset, budget, rng);
}

void Privelet::Build(const Dataset& dataset, PrivacyBudget& budget, Rng& rng) {
  int m = options_.grid_size;
  if (m <= 0) {
    m = ChooseUniformGridSize(static_cast<double>(dataset.size()),
                              budget.total(), options_.guideline_c);
  }
  DPGRID_CHECK(m >= 1);
  const double epsilon = budget.SpendRemaining("privelet/coefficients");

  const auto mm = static_cast<size_t>(m);
  GridCounts exact = GridCounts::FromDataset(dataset, mm, mm);

  // Pad to powers of two.
  const size_t px = NextPowerOfTwo(mm);
  const size_t py = NextPowerOfTwo(mm);
  std::vector<double> padded(px * py, 0.0);
  for (size_t iy = 0; iy < mm; ++iy) {
    for (size_t ix = 0; ix < mm; ++ix) {
      padded[iy * px + ix] = exact.at(ix, iy);
    }
  }

  HaarForward2D(padded, px, py);

  // Generalized sensitivity of the 2-D standard decomposition:
  // (log2 px + 1) * (log2 py + 1). A unit change of one cell perturbs one
  // coefficient per (row-level, column-level) pair, and weights make each
  // contribute exactly 1.
  const double hx = std::log2(static_cast<double>(px));
  const double hy = std::log2(static_cast<double>(py));
  const double sensitivity = (hx + 1.0) * (hy + 1.0);
  const std::vector<double> wx = HaarWeights(px);
  const std::vector<double> wy = HaarWeights(py);
  for (size_t iy = 0; iy < py; ++iy) {
    for (size_t ix = 0; ix < px; ++ix) {
      const double scale = sensitivity / (epsilon * wx[ix] * wy[iy]);
      padded[iy * px + ix] += rng.Laplace(scale);
    }
  }

  HaarInverse2D(padded, px, py);

  noisy_.emplace(dataset.domain(), mm, mm);
  for (size_t iy = 0; iy < mm; ++iy) {
    for (size_t ix = 0; ix < mm; ++ix) {
      noisy_->set(ix, iy, padded[iy * px + ix]);
    }
  }
  prefix_.emplace(noisy_->values(), mm, mm);
}

double Privelet::Answer(const Rect& query) const {
  double x0 = 0.0;
  double x1 = 0.0;
  double y0 = 0.0;
  double y1 = 0.0;
  noisy_->ToCellCoords(query, &x0, &x1, &y0, &y1);
  return prefix_->FractionalSum(x0, x1, y0, y1);
}

std::string Privelet::Name() const {
  return "W" + std::to_string(grid_size());
}

std::vector<SynopsisCell> Privelet::ExportCells() const {
  std::vector<SynopsisCell> cells;
  cells.reserve(noisy_->values().size());
  for (size_t iy = 0; iy < noisy_->ny(); ++iy) {
    for (size_t ix = 0; ix < noisy_->nx(); ++ix) {
      cells.push_back(
          SynopsisCell{noisy_->CellRect(ix, iy), noisy_->at(ix, iy)});
    }
  }
  return cells;
}

}  // namespace dpgrid
