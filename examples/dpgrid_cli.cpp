// dpgrid_cli: the command-line face of the library — the workflow a data
// custodian and an analyst would actually run.
//
// Custodian side (sees the raw data, spends the privacy budget):
//   dpgrid_cli build <points.csv> <xlo> <ylo> <xhi> <yhi> <epsilon> \
//              <ug|ag> <out_cells.csv>
//
// Analyst side (sees only the released cells):
//   dpgrid_cli query <cells.csv> <xlo> <ylo> <xhi> <yhi>
//   dpgrid_cli synthesize <cells.csv> <n_points> <out_points.csv>
//
// Demo mode (no files needed): `dpgrid_cli demo` generates a dataset,
// builds a release, queries it, and round-trips through CSV.
//
// Network client side (talks to a running dpgrid_server):
//   dpgrid_cli remote-list  <host> <port>
//   dpgrid_cli remote-query <host> <port> <name> <xlo> <ylo> <xhi> <yhi>
//   dpgrid_cli remote-stats <host> <port>
//   dpgrid_cli remote-health <host> <port>
//   dpgrid_cli remote-metrics <host> <port> [--prom]
//
// Set DPGRID_SEED for a reproducible noise seed (default: random).

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <cstring>
#include <string>
#include <vector>

#include "common/random.h"
#include "data/generators.h"
#include "geo/dataset.h"
#include "grid/adaptive_grid.h"
#include "grid/uniform_grid.h"
#include "obs/exposition.h"
#include "server/client.h"

#include "example_util.h"
#include "synth/cells_io.h"
#include "synth/synthesize.h"

namespace {

using namespace dpgrid;

// Set DPGRID_SEED for reproducible runs (demos, goldens, debugging). The
// default stays non-deterministic on purpose: a custodian's released noise
// must not be replayable from a publicly known seed, or the DP guarantee
// is void.
Rng MakeRng() {
  const char* env = std::getenv("DPGRID_SEED");
  if (env != nullptr && *env != '\0') {
    return Rng(static_cast<uint64_t>(std::strtoull(env, nullptr, 10)));
  }
  return Rng(std::random_device{}());
}

int CmdBuild(int argc, char** argv) {
  if (argc < 10) {
    std::fprintf(stderr,
                 "usage: dpgrid_cli build <points.csv> <xlo> <ylo> <xhi> "
                 "<yhi> <epsilon> <ug|ag> <out_cells.csv>\n");
    return 2;
  }
  const Rect domain{std::atof(argv[3]), std::atof(argv[4]),
                    std::atof(argv[5]), std::atof(argv[6])};
  const double epsilon = std::atof(argv[7]);
  const std::string method = argv[8];
  Dataset data(domain);
  if (!LoadCsvPoints(argv[2], domain, &data)) {
    std::fprintf(stderr, "error: cannot read %s\n", argv[2]);
    return 1;
  }
  std::printf("loaded %lld points over %s\n",
              static_cast<long long>(data.size()),
              domain.ToString().c_str());
  Rng rng = MakeRng();
  std::vector<SynopsisCell> cells;
  std::string name;
  if (method == "ag") {
    AdaptiveGrid synopsis(data, epsilon, rng);
    cells = synopsis.ExportCells();
    name = synopsis.Name();
  } else {
    UniformGrid synopsis(data, epsilon, rng);
    cells = synopsis.ExportCells();
    name = synopsis.Name();
  }
  if (!SaveSynopsisCells(argv[9], cells)) {
    std::fprintf(stderr, "error: cannot write %s\n", argv[9]);
    return 1;
  }
  std::printf("released %s: %zu cells -> %s (epsilon = %g consumed)\n",
              name.c_str(), cells.size(), argv[9], epsilon);
  return 0;
}

int CmdQuery(int argc, char** argv) {
  if (argc < 7) {
    std::fprintf(stderr,
                 "usage: dpgrid_cli query <cells.csv> <xlo> <ylo> <xhi> "
                 "<yhi>\n");
    return 2;
  }
  std::vector<SynopsisCell> cells;
  if (!LoadSynopsisCells(argv[2], &cells)) {
    std::fprintf(stderr, "error: cannot read cells from %s\n", argv[2]);
    return 1;
  }
  CellSynopsis synopsis(std::move(cells));
  const Rect query{std::atof(argv[3]), std::atof(argv[4]),
                   std::atof(argv[5]), std::atof(argv[6])};
  std::printf("%.2f\n", synopsis.Answer(query));
  return 0;
}

int CmdSynthesize(int argc, char** argv) {
  if (argc < 5) {
    std::fprintf(stderr,
                 "usage: dpgrid_cli synthesize <cells.csv> <n_points> "
                 "<out_points.csv>\n");
    return 2;
  }
  std::vector<SynopsisCell> cells;
  if (!LoadSynopsisCells(argv[2], &cells)) {
    std::fprintf(stderr, "error: cannot read cells from %s\n", argv[2]);
    return 1;
  }
  // Domain = bounding box of the cells.
  Rect domain = cells[0].region;
  for (const SynopsisCell& c : cells) {
    domain.xlo = std::min(domain.xlo, c.region.xlo);
    domain.ylo = std::min(domain.ylo, c.region.ylo);
    domain.xhi = std::max(domain.xhi, c.region.xhi);
    domain.yhi = std::max(domain.yhi, c.region.yhi);
  }
  Rng rng = MakeRng();
  Dataset synthetic =
      SynthesizeFromCells(cells, domain, std::atoll(argv[3]), rng);
  if (!SaveCsvPoints(argv[4], synthetic)) {
    std::fprintf(stderr, "error: cannot write %s\n", argv[4]);
    return 1;
  }
  std::printf("wrote %lld synthetic points to %s\n",
              static_cast<long long>(synthetic.size()), argv[4]);
  return 0;
}

int CmdDemo() {
  const char* points_path = "dpgrid_demo_points.csv";
  const char* cells_path = "dpgrid_demo_cells.csv";
  const char* synth_path = "dpgrid_demo_synthetic.csv";
  Rng rng(1234);
  Dataset data = MakeLandmarkLike(100000, rng);
  SaveCsvPoints(points_path, data);
  std::printf("[custodian] wrote %s (100000 raw points)\n", points_path);

  AdaptiveGrid synopsis(data, 1.0, rng);
  SaveSynopsisCells(cells_path, synopsis.ExportCells());
  std::printf("[custodian] released %s as %s (epsilon = 1.0)\n", cells_path,
              synopsis.Name().c_str());

  std::vector<SynopsisCell> cells;
  LoadSynopsisCells(cells_path, &cells);
  CellSynopsis release(std::move(cells));
  const Rect query{-100, 30, -80, 45};
  std::printf("[analyst]   count in %s: released=%.1f  (true=%lld)\n",
              query.ToString().c_str(), release.Answer(query),
              static_cast<long long>(data.CountInRect(query)));

  Dataset synthetic =
      SynthesizeFromCells(release.ExportCells(),
                          data.domain(), data.size(), rng);
  SaveCsvPoints(synth_path, synthetic);
  std::printf("[analyst]   wrote %s (%lld synthetic points)\n", synth_path,
              static_cast<long long>(synthetic.size()));
  std::remove(points_path);
  std::remove(cells_path);
  std::remove(synth_path);
  std::printf("(demo files cleaned up)\n");
  return 0;
}

// Connects to argv[2]:argv[3]; shared by the remote-* commands.
bool ConnectRemote(char** argv, QueryClient* client) {
  uint16_t port = 0;
  if (!ParsePort(argv[3], /*allow_zero=*/false, &port)) {
    std::fprintf(stderr, "error: bad port '%s' (need 1-65535)\n", argv[3]);
    return false;
  }
  std::string error;
  if (!client->Connect(argv[2], port, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return false;
  }
  return true;
}

int CmdRemoteList(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr, "usage: dpgrid_cli remote-list <host> <port>\n");
    return 2;
  }
  QueryClient client;
  if (!ConnectRemote(argv, &client)) return 1;
  std::vector<CatalogEntryInfo> entries;
  std::string error;
  if (!client.ListSynopses(&entries, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  std::printf("%-20s %8s %5s %-10s %8s  %s\n", "name", "version", "dims",
              "synopsis", "epsilon", "label");
  for (const CatalogEntryInfo& e : entries) {
    std::printf("%-20s %8llu %5u %-10s %8g  %s\n", e.name.c_str(),
                static_cast<unsigned long long>(e.version), e.dims,
                e.synopsis_name.c_str(), e.epsilon, e.label.c_str());
  }
  return 0;
}

int CmdRemoteQuery(int argc, char** argv) {
  if (argc < 9) {
    std::fprintf(stderr,
                 "usage: dpgrid_cli remote-query <host> <port> <name> "
                 "<xlo> <ylo> <xhi> <yhi>\n");
    return 2;
  }
  // Coordinates are validated as strictly as the port: a typo'd number
  // must fail loudly, not silently become 0.0 and query the wrong box.
  Rect query;
  double* coords[] = {&query.xlo, &query.ylo, &query.xhi, &query.yhi};
  for (int i = 0; i < 4; ++i) {
    if (!ParseCoord(argv[5 + i], coords[i])) {
      std::fprintf(stderr, "error: bad coordinate '%s' (need a finite "
                           "number)\n", argv[5 + i]);
      return 2;
    }
  }
  QueryClient client;
  if (!ConnectRemote(argv, &client)) return 1;
  std::vector<double> answers;
  uint64_t version = 0;
  WireStatus status = WireStatus::kOk;
  std::string error;
  if (!client.QueryBatch(argv[4], std::vector<Rect>{query}, &answers,
                         &version, &status, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  std::printf("%.2f  (synopsis '%s' v%llu)\n", answers[0], argv[4],
              static_cast<unsigned long long>(version));
  return 0;
}

int CmdRemoteStats(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr, "usage: dpgrid_cli remote-stats <host> <port>\n");
    return 2;
  }
  QueryClient client;
  if (!ConnectRemote(argv, &client)) return 1;
  WireStats stats;
  std::string error;
  if (!client.Stats(&stats, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  // Labels come from the same field table the wire codec and the METRICS
  // exposition use, so the three can never drift apart.
  for (const WireStatsField& f : kWireStatsFields) {
    std::printf("%-20s %llu\n", f.name,
                static_cast<unsigned long long>(stats.*f.field));
  }
  return 0;
}

int CmdRemoteMetrics(int argc, char** argv) {
  if (argc < 4 || argc > 5 ||
      (argc == 5 && std::strcmp(argv[4], "--prom") != 0)) {
    std::fprintf(
        stderr, "usage: dpgrid_cli remote-metrics <host> <port> [--prom]\n");
    return 2;
  }
  const bool prom = argc == 5;
  QueryClient client;
  if (!ConnectRemote(argv, &client)) return 1;
  WireStats stats;
  obs::MetricsSnapshot metrics;
  std::string error;
  if (!client.Metrics(&stats, &metrics, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  std::vector<obs::NamedCounter> counters;
  counters.reserve(kNumWireStatsFields);
  for (const WireStatsField& f : kWireStatsFields) {
    counters.push_back(obs::NamedCounter{f.name, stats.*f.field});
  }
  const std::string text = prom ? obs::ToPrometheusText(counters, metrics)
                                : obs::ToJson(counters, metrics);
  std::fwrite(text.data(), 1, text.size(), stdout);
  if (!prom) std::fputc('\n', stdout);
  return 0;
}

int CmdRemoteHealth(int argc, char** argv) {
  if (argc != 4) {
    std::fprintf(stderr, "usage: dpgrid_cli remote-health <host> <port>\n");
    return 2;
  }
  QueryClient client;
  if (!ConnectRemote(argv, &client)) return 1;
  ServerHealth state = ServerHealth::kServing;
  uint64_t active = 0;
  std::string error;
  if (!client.Health(&state, &active, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  std::printf("%s active_connections=%llu\n", ServerHealthName(state),
              static_cast<unsigned long long>(active));
  // DRAINING exits non-zero so health checks in scripts fail the node
  // out of rotation without parsing the output.
  return state == ServerHealth::kServing ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: dpgrid_cli <build|query|synthesize|demo|"
                 "remote-list|remote-query|remote-stats|remote-health|"
                 "remote-metrics> ...\n");
    return 2;
  }
  if (std::strcmp(argv[1], "build") == 0) return CmdBuild(argc, argv);
  if (std::strcmp(argv[1], "query") == 0) return CmdQuery(argc, argv);
  if (std::strcmp(argv[1], "synthesize") == 0) return CmdSynthesize(argc, argv);
  if (std::strcmp(argv[1], "demo") == 0) return CmdDemo();
  if (std::strcmp(argv[1], "remote-list") == 0) return CmdRemoteList(argc, argv);
  if (std::strcmp(argv[1], "remote-query") == 0) {
    return CmdRemoteQuery(argc, argv);
  }
  if (std::strcmp(argv[1], "remote-stats") == 0) {
    return CmdRemoteStats(argc, argv);
  }
  if (std::strcmp(argv[1], "remote-health") == 0) {
    return CmdRemoteHealth(argc, argv);
  }
  if (std::strcmp(argv[1], "remote-metrics") == 0) {
    return CmdRemoteMetrics(argc, argv);
  }
  std::fprintf(stderr, "unknown command: %s\n", argv[1]);
  return 2;
}
