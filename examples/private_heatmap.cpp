// private_heatmap: publish a privacy-preserving synthetic version of a
// location dataset — the paper's "generate a synthetic dataset" use of a DP
// synopsis (§II-B).
//
// Builds an Adaptive Grid synopsis of a landmark-style dataset, samples a
// synthetic point cloud from the noisy cells, writes it to CSV, and renders
// side-by-side ASCII density heatmaps of the original and synthetic data so
// the spatial structure is visible at a glance.
//
//   $ ./examples/private_heatmap [epsilon]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/random.h"
#include "data/ascii_map.h"
#include "data/generators.h"
#include "grid/adaptive_grid.h"
#include "synth/synthesize.h"

namespace {

using namespace dpgrid;

void PrintHeatmap(const char* title, const Dataset& data, size_t w, size_t h) {
  std::printf("%s\n", title);
  std::fputs(RenderAsciiHeatmap(data, w, h).c_str(), stdout);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dpgrid;
  const double epsilon = (argc > 1) ? std::atof(argv[1]) : 0.5;

  Rng rng(7);
  Dataset original = MakeLandmarkLike(400000, rng);
  std::printf("original: %lld points, epsilon = %.2f\n\n",
              static_cast<long long>(original.size()), epsilon);

  // The entire release pipeline: synopsis -> synthetic points. Everything
  // after the synopsis is post-processing, so the synthetic dataset is as
  // private as the synopsis itself.
  AdaptiveGrid synopsis(original, epsilon, rng);
  Dataset synthetic = SynthesizeFromSynopsis(synopsis, original.domain(),
                                             original.size(), rng);

  const std::string out_path = "private_heatmap_points.csv";
  if (SaveCsvPoints(out_path, synthetic)) {
    std::printf("wrote %lld synthetic points to %s\n\n",
                static_cast<long long>(synthetic.size()), out_path.c_str());
  }

  PrintHeatmap("original data", original, 72, 24);
  std::printf("\n");
  PrintHeatmap(("synthetic data (" + synopsis.Name() + ", eps=" +
                std::to_string(epsilon) + ")")
                   .c_str(),
               synthetic, 72, 24);
  std::printf(
      "\nDense metros survive; fine structure blurs at lower epsilon. "
      "Try: ./private_heatmap 0.05\n");
  return 0;
}
