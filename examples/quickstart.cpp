// Quickstart: build a differentially private synopsis of a geospatial
// dataset and answer range-count queries.
//
//   $ ./examples/quickstart
//
// Demonstrates the two methods from the paper: the Uniform Grid (UG) with
// the Guideline-1 grid size, and the Adaptive Grid (AG), plus explicit
// privacy-budget accounting.

#include <cstdio>

#include "common/random.h"
#include "data/generators.h"
#include "dp/budget.h"
#include "grid/adaptive_grid.h"
#include "grid/uniform_grid.h"

int main() {
  using namespace dpgrid;

  // 1. A dataset: 200k check-in style points over a world-sized domain.
  //    (Use LoadCsvPoints to bring your own "x,y" file instead.)
  Rng rng(42);
  Dataset dataset = MakeCheckinLike(200000, rng);
  std::printf("dataset: N=%lld points, domain %s\n",
              static_cast<long long>(dataset.size()),
              dataset.domain().ToString().c_str());

  // 2. A privacy budget. Everything below consumes it exactly once.
  const double epsilon = 1.0;

  // 3. Uniform Grid with the paper's Guideline 1 (m = sqrt(N*eps/10)).
  PrivacyBudget ug_budget(epsilon);
  UniformGrid ug(dataset, ug_budget, rng);
  std::printf("built %s (Guideline-1 grid size %d), budget left %.3g\n",
              ug.Name().c_str(), ug.grid_size(), ug_budget.remaining());

  // 4. Adaptive Grid: coarse level-1 grid + per-cell adaptive refinement +
  //    constrained inference (the paper's main contribution).
  PrivacyBudget ag_budget(epsilon);
  AdaptiveGrid ag(dataset, ag_budget, rng);
  std::printf("built %s (m1=%d, %lld leaf cells)\n", ag.Name().c_str(),
              ag.level1_size(), static_cast<long long>(ag.TotalLeafCells()));
  for (const auto& entry : ag_budget.ledger()) {
    std::printf("  budget ledger: %-18s eps=%.3f\n", entry.label.c_str(),
                entry.epsilon);
  }

  // 5. Answer some range-count queries and compare with the truth.
  const Rect queries[] = {
      {-130.0, 20.0, -60.0, 55.0},   // North-America-sized
      {-10.0, 35.0, 30.0, 60.0},     // Europe-sized
      {100.0, -10.0, 150.0, 30.0},   // Southeast-Asia-sized
      {-30.0, -60.0, 10.0, -20.0},   // South-Atlantic (mostly empty)
  };
  std::printf("\n%-34s %10s %12s %12s\n", "query", "true", "UG est", "AG est");
  for (const Rect& q : queries) {
    std::printf("%-34s %10lld %12.1f %12.1f\n", q.ToString().c_str(),
                static_cast<long long>(dataset.CountInRect(q)), ug.Answer(q),
                ag.Answer(q));
  }
  std::printf(
      "\nBoth synopses satisfy %.1f-differential privacy; AG estimates are "
      "typically closer to the truth.\n",
      epsilon);
  return 0;
}
