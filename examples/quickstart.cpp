// Quickstart: build a differentially private synopsis of a geospatial
// dataset and answer range-count queries.
//
//   $ ./examples/quickstart
//
// Demonstrates the two methods from the paper: the Uniform Grid (UG) with
// the Guideline-1 grid size, and the Adaptive Grid (AG), plus explicit
// privacy-budget accounting.

#include <chrono>
#include <cstdio>
#include <vector>

#include "common/random.h"
#include "data/generators.h"
#include "dp/budget.h"
#include "grid/adaptive_grid.h"
#include "grid/uniform_grid.h"
#include "query/query_engine.h"
#include "query/workload.h"

int main() {
  using namespace dpgrid;

  // 1. A dataset: 200k check-in style points over a world-sized domain.
  //    (Use LoadCsvPoints to bring your own "x,y" file instead.)
  Rng rng(42);
  Dataset dataset = MakeCheckinLike(200000, rng);
  std::printf("dataset: N=%lld points, domain %s\n",
              static_cast<long long>(dataset.size()),
              dataset.domain().ToString().c_str());

  // 2. A privacy budget. Everything below consumes it exactly once.
  const double epsilon = 1.0;

  // 3. Uniform Grid with the paper's Guideline 1 (m = sqrt(N*eps/10)).
  PrivacyBudget ug_budget(epsilon);
  UniformGrid ug(dataset, ug_budget, rng);
  std::printf("built %s (Guideline-1 grid size %d), budget left %.3g\n",
              ug.Name().c_str(), ug.grid_size(), ug_budget.remaining());

  // 4. Adaptive Grid: coarse level-1 grid + per-cell adaptive refinement +
  //    constrained inference (the paper's main contribution).
  PrivacyBudget ag_budget(epsilon);
  AdaptiveGrid ag(dataset, ag_budget, rng);
  std::printf("built %s (m1=%d, %lld leaf cells)\n", ag.Name().c_str(),
              ag.level1_size(), static_cast<long long>(ag.TotalLeafCells()));
  for (const auto& entry : ag_budget.ledger()) {
    std::printf("  budget ledger: %-18s eps=%.3f\n", entry.label.c_str(),
                entry.epsilon);
  }

  // 5. Answer some range-count queries and compare with the truth.
  const Rect queries[] = {
      {-130.0, 20.0, -60.0, 55.0},   // North-America-sized
      {-10.0, 35.0, 30.0, 60.0},     // Europe-sized
      {100.0, -10.0, 150.0, 30.0},   // Southeast-Asia-sized
      {-30.0, -60.0, 10.0, -20.0},   // South-Atlantic (mostly empty)
  };
  std::printf("\n%-34s %10s %12s %12s\n", "query", "true", "UG est", "AG est");
  for (const Rect& q : queries) {
    std::printf("%-34s %10lld %12.1f %12.1f\n", q.ToString().c_str(),
                static_cast<long long>(dataset.CountInRect(q)), ug.Answer(q),
                ag.Answer(q));
  }
  std::printf(
      "\nBoth synopses satisfy %.1f-differential privacy; AG estimates are "
      "typically closer to the truth.\n",
      epsilon);

  // 6. Serving at scale: answer a large batch through the query engine,
  //    which shards across threads and uses the allocation-free batched
  //    kernel — results are bitwise-identical to per-query Answer calls.
  Workload workload = GenerateWorkload(dataset.domain(), 96.0, 48.0, 6, 20000,
                                       rng);
  std::vector<Rect> batch;
  for (const auto& group : workload.queries) {
    batch.insert(batch.end(), group.begin(), group.end());
  }
  QueryEngine engine;
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<double> answers = engine.AnswerAll(ug, batch);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  double total = 0.0;
  for (double a : answers) total += a;
  std::printf(
      "\nquery engine: answered %zu queries in %.1f ms (%.1fM QPS on %d "
      "thread(s)); mean estimate %.1f\n",
      batch.size(), secs * 1e3, batch.size() / secs / 1e6,
      engine.num_threads(), total / static_cast<double>(answers.size()));
  return 0;
}
