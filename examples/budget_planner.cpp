// budget_planner: explore how the paper's guidelines translate a privacy
// budget into partition granularities before touching any data — useful for
// capacity planning a DP release.
//
//   $ ./examples/budget_planner [N]
//
// Prints, for a sweep of epsilon values: the Guideline-1 UG grid size, the
// AG level-1 size, the expected per-cell Laplace noise, and the Guideline-2
// leaf sizes an AG cell would use at several densities.

#include <cstdio>
#include <cstdlib>

#include "dp/laplace.h"
#include "grid/guidelines.h"
#include "metrics/table.h"

int main(int argc, char** argv) {
  using namespace dpgrid;
  const double n = (argc > 1) ? std::atof(argv[1]) : 1000000.0;

  std::printf("Guideline planning for a dataset of N = %.0f points\n\n", n);

  TablePrinter table({"epsilon", "UG size m", "UG cells", "avg pts/cell",
                      "noise sd/cell", "AG m1"});
  for (double eps : {0.01, 0.05, 0.1, 0.5, 1.0, 2.0}) {
    const int m = ChooseUniformGridSize(n, eps);
    const double cells = static_cast<double>(m) * m;
    table.AddRow({FormatDouble(eps, 3), std::to_string(m),
                  FormatDouble(cells, 6), FormatDouble(n / cells, 4),
                  FormatDouble(LaplaceStddev(1.0, eps), 4),
                  std::to_string(ChooseAdaptiveLevel1Size(n, eps))});
  }
  table.Print();

  std::printf(
      "\nGuideline 2: leaf grid m2 x m2 for an AG level-1 cell with noisy "
      "count N' (alpha = 0.5):\n");
  TablePrinter leaf_table(
      {"epsilon", "N'=100", "N'=1000", "N'=10000", "N'=100000"});
  for (double eps : {0.1, 0.5, 1.0, 2.0}) {
    std::vector<std::string> row = {FormatDouble(eps, 3)};
    for (double count : {100.0, 1000.0, 10000.0, 100000.0}) {
      row.push_back(
          std::to_string(ChooseAdaptiveLevel2Size(count, 0.5 * eps)));
    }
    leaf_table.AddRow(std::move(row));
  }
  leaf_table.Print();

  std::printf(
      "\nReading the tables: the grid refines as N*eps grows (Guideline 1), "
      "and dense AG cells get finer leaf grids (Guideline 2). The noise "
      "column is the Laplace stddev sqrt(2)/eps added to every cell "
      "count.\n");
  return 0;
}
