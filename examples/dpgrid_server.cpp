// dpgrid_server: serve a SnapshotStore directory over TCP.
//
//   ./dpgrid_server <snapshot_dir> [port] [--demo]
//
// Boots a SynopsisCatalog with the latest version of every synopsis in
// <snapshot_dir> and serves them over the DPGW wire protocol (see README,
// "Wire protocol"). Port 0 (the default) picks an ephemeral port and
// prints it. --demo publishes a seeded demo grid first so the server has
// something to serve on an empty directory.
//
// A publisher process that drops new .dpgs versions into the directory
// becomes visible to clients on the next RELOAD op, or automatically
// every DPGRID_RELOAD_SECS seconds (env; default 0 = disabled).
//
// SIGINT (Ctrl-C) and SIGTERM (what init systems and container runtimes
// send) both exit through the graceful-drain path: stop accepting, let
// in-flight frames finish up to DPGRID_DRAIN_MS, then cut stragglers.
// Resilience knobs (all env, see QueryServerOptions for semantics;
// 0 disables): DPGRID_READ_DEADLINE_MS, DPGRID_IDLE_TIMEOUT_MS,
// DPGRID_MAX_CONNS, DPGRID_DRAIN_MS. DPGRID_EVENT_LOOP=0 falls back to
// the legacy thread-per-connection engine (default: epoll event loop
// with pipelined frames). Observability knobs: DPGRID_SLOW_FRAME_US
// (slow-frame trace threshold, 0 disables) and DPGRID_LOG_LEVEL
// (debug|info|warn|error|off; default info).
//
// Try it:
//   ./dpgrid_server /tmp/snaps 7171 --demo &
//   ./dpgrid_cli remote-list 127.0.0.1 7171
//   ./dpgrid_cli remote-query 127.0.0.1 7171 demo -100 30 -80 45

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "catalog/synopsis_catalog.h"
#include "common/env.h"
#include "common/random.h"
#include "data/generators.h"
#include "grid/uniform_grid.h"
#include "obs/log.h"
#include "query/query_engine.h"
#include "server/server.h"
#include "store/snapshot_store.h"

#include "example_util.h"

using namespace dpgrid;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: dpgrid_server <snapshot_dir> [port] [--demo]\n");
    return 2;
  }
  const std::string dir = argv[1];
  uint16_t port = 0;
  bool demo = false;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--demo") == 0) {
      demo = true;
    } else if (!ParsePort(argv[i], /*allow_zero=*/true, &port)) {
      std::fprintf(stderr, "error: bad port '%s' (need 0-65535; 0 = "
                           "ephemeral)\n", argv[i]);
      return 2;
    }
  }

  SnapshotStore store(dir);
  if (demo && store.ListNames().empty()) {
    Rng rng(20130408);
    const Dataset data = MakeLandmarkLike(100000, rng);
    UniformGrid demo_grid(data, 1.0, rng);
    std::string error;
    if (store.Publish("demo", demo_grid, SnapshotMeta{1.0, "demo"}, &error) ==
        0) {
      obs::Log(obs::LogLevel::kError, "demo_publish_failed",
               {{"error", error}});
      return 1;
    }
    obs::Log(obs::LogLevel::kInfo, "demo_published",
             {{"synopsis", demo_grid.Name()}, {"dir", dir}});
  }

  SynopsisCatalog catalog(&store);
  std::string errors;
  const size_t loaded = catalog.LoadAll(&errors);
  if (!errors.empty()) {
    obs::Log(obs::LogLevel::kWarn, "snapshots_failed_to_load",
             {{"errors", errors}});
  }
  obs::Log(obs::LogLevel::kInfo, "catalog_loaded",
           {{"synopses", std::to_string(loaded)}, {"dir", dir}});
  if (obs::LogEnabled(obs::LogLevel::kDebug)) {
    for (const CatalogEntryInfo& e : catalog.List()) {
      obs::Log(obs::LogLevel::kDebug, "catalog_entry",
               {{"name", e.name},
                {"version", std::to_string(e.version)},
                {"dims", std::to_string(e.dims)},
                {"synopsis", e.synopsis_name},
                {"epsilon", std::to_string(e.epsilon)},
                {"label", e.label}});
    }
  }

  const QueryEngine engine;
  QueryServerOptions options;
  options.port = port;
  options.read_deadline_ms = static_cast<int>(
      EnvInt64("DPGRID_READ_DEADLINE_MS", options.read_deadline_ms));
  options.idle_timeout_ms = static_cast<int>(
      EnvInt64("DPGRID_IDLE_TIMEOUT_MS", options.idle_timeout_ms));
  options.max_connections = static_cast<size_t>(EnvInt64(
      "DPGRID_MAX_CONNS", static_cast<int64_t>(options.max_connections)));
  DrainOptions drain;
  drain.deadline_ms =
      static_cast<int>(EnvInt64("DPGRID_DRAIN_MS", drain.deadline_ms));
  QueryServer server(&catalog, &engine, options);
  // Registered before Start so a signal racing the startup window is not
  // lost to the default (abrupt-kill) disposition.
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  std::string error;
  if (!server.Start(&error)) {
    obs::Log(obs::LogLevel::kError, "startup_failed", {{"error", error}});
    return 1;
  }
  obs::Log(obs::LogLevel::kInfo, "startup",
           {{"address", options.bind_address},
            {"port", std::to_string(server.port())},
            {"engine", server.event_loop_active() ? "epoll"
                                                  : "thread-per-connection"},
            {"protocol_version", std::to_string(kWireProtocolVersion)}});
  const long reload_secs =
      std::getenv("DPGRID_RELOAD_SECS") != nullptr
          ? std::atol(std::getenv("DPGRID_RELOAD_SECS"))
          : 0;
  long ticks = 0;
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    if (reload_secs > 0 && ++ticks * 200 >= reload_secs * 1000) {
      ticks = 0;
      const size_t installed = catalog.ReloadAll(nullptr);
      server.RecordReloads(installed);
      if (installed > 0) {
        obs::Log(obs::LogLevel::kInfo, "hot_reload",
                 {{"versions_installed", std::to_string(installed)}});
      }
    }
  }

  const bool drained = server.Shutdown(drain);
  const WireStats stats = server.StatsSnapshot();
  obs::Log(obs::LogLevel::kInfo, "shutdown",
           {{"drained", drained ? "true" : "false"},
            {"connections", std::to_string(stats.connections_accepted)},
            {"frames", std::to_string(stats.frames_received)},
            {"batches", std::to_string(stats.batches_answered)},
            {"queries", std::to_string(stats.queries_answered)},
            {"errors", std::to_string(stats.errors_returned)},
            {"shed", std::to_string(stats.connections_shed)},
            {"read_timeouts", std::to_string(stats.read_timeouts)},
            {"idle_timeouts", std::to_string(stats.idle_timeouts)}});
  return 0;
}
