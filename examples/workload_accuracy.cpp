// workload_accuracy: evaluate every synopsis method in the library on a
// paper-style query workload and print an accuracy scoreboard — the
// decision-support view a practitioner needs when picking a method and an
// epsilon for a release.
//
//   $ ./examples/workload_accuracy [epsilon] [n_points]

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "common/random.h"
#include "data/generators.h"
#include "grid/adaptive_grid.h"
#include "grid/uniform_grid.h"
#include "hier/hierarchy_grid.h"
#include "index/range_count_index.h"
#include "kd/kd_tree.h"
#include "metrics/error.h"
#include "metrics/table.h"
#include "query/evaluator.h"
#include "query/workload.h"
#include "wavelet/privelet.h"

int main(int argc, char** argv) {
  using namespace dpgrid;
  const double epsilon = (argc > 1) ? std::atof(argv[1]) : 0.5;
  const int64_t n = (argc > 2) ? std::atoll(argv[2]) : 300000;

  Rng rng(11);
  Dataset data = MakeCheckinLike(n, rng);
  RangeCountIndex truth(data);
  Workload workload = GenerateWorkload(data.domain(), 192, 96, 6, 200, rng);
  const double rho = DefaultRho(static_cast<double>(data.size()));

  std::printf("checkin-like dataset, N=%lld, epsilon=%.2f, %zu queries\n\n",
              static_cast<long long>(n), epsilon, workload.total_queries());

  std::vector<std::unique_ptr<Synopsis>> methods;
  methods.push_back(std::make_unique<UniformGrid>(data, epsilon, rng));
  methods.push_back(std::make_unique<AdaptiveGrid>(data, epsilon, rng));
  methods.push_back(std::make_unique<Privelet>(data, epsilon, rng));
  {
    HierarchyGridOptions opts;
    opts.leaf_size = 256;
    opts.branching = 2;
    opts.depth = 3;
    methods.push_back(
        std::make_unique<HierarchyGrid>(data, epsilon, rng, opts));
  }
  methods.push_back(
      std::make_unique<KdTree>(data, epsilon, rng, KdStandardOptions()));
  methods.push_back(
      std::make_unique<KdTree>(data, epsilon, rng, KdHybridOptions()));

  TablePrinter table({"method", "mean rel err", "median", "p95",
                      "mean abs err"});
  for (const auto& method : methods) {
    auto errors = EvaluateSynopsis(*method, workload, truth, rho);
    Summary rel = ComputeSummary(PoolRelative(errors));
    Summary abs = ComputeSummary(PoolAbsolute(errors));
    table.AddRow({method->Name(), FormatDouble(rel.mean, 4),
                  FormatDouble(rel.p50, 4), FormatDouble(rel.p95, 4),
                  FormatDouble(abs.mean, 5)});
  }
  table.Print();
  std::printf(
      "\nExpected ordering (paper Fig. 5): AG best, UG/Privelet/KD-hybrid "
      "mid-pack, KD-standard worst.\n");
  return 0;
}
