#ifndef DPGRID_EXAMPLES_EXAMPLE_UTIL_H_
#define DPGRID_EXAMPLES_EXAMPLE_UTIL_H_

#include <cmath>
#include <cstdint>
#include <cstdlib>

// Helpers shared by the example binaries.

/// Strict TCP port parse: digits only, in range. `allow_zero` admits 0
/// (= bind an ephemeral port) for servers; clients need a real port.
inline bool ParsePort(const char* arg, bool allow_zero, uint16_t* out) {
  char* end = nullptr;
  const long port = std::strtol(arg, &end, 10);
  if (end == arg || *end != '\0' || port < (allow_zero ? 0 : 1) ||
      port > 65535) {
    return false;
  }
  *out = static_cast<uint16_t>(port);
  return true;
}

/// Strict coordinate parse: the whole argument must be a finite double.
/// Unlike atof, garbage ("abc", "1.5x", "nan") is rejected instead of
/// silently reading 0.0 and querying the wrong rectangle.
inline bool ParseCoord(const char* arg, double* out) {
  char* end = nullptr;
  const double v = std::strtod(arg, &end);
  if (end == arg || *end != '\0' || !std::isfinite(v)) return false;
  *out = v;
  return true;
}

#endif  // DPGRID_EXAMPLES_EXAMPLE_UTIL_H_
