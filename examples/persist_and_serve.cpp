// persist_and_serve: the build-once/serve-many pipeline end to end.
//
// A "custodian" process streams points through the single-scan UG builder
// (paper §IV-C: one pass, O(m²) state), periodically publishing each
// epoch's synopsis as a versioned snapshot — durably to a SnapshotStore
// directory (temp file + atomic rename) and live into a ServingSynopsis
// that readers hot-swap onto without pausing. A simulated restart then
// reloads the newest snapshot from disk and verifies it answers
// bitwise-identically to the in-memory original.
//
//   ./persist_and_serve [snapshot_dir]       (default ./dpgrid_snapshots)

#include <cstdio>
#include <string>
#include <vector>

#include "common/random.h"
#include "data/generators.h"
#include "grid/streaming.h"
#include "query/query_engine.h"
#include "store/publish.h"
#include "store/serving.h"
#include "store/snapshot_store.h"

using namespace dpgrid;

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : "dpgrid_snapshots";
  const double epsilon = 1.0;  // per published release
  const int points_per_epoch = 40000;
  const int num_epochs = 4;

  // The "raw" point stream, arriving in epochs. Everything is seeded so the
  // walkthrough is reproducible.
  Rng data_rng(20130408);
  const Dataset all_points =
      MakeCheckinLike(points_per_epoch * num_epochs, data_rng);
  const Rect domain = all_points.domain();

  SnapshotStore store(dir);
  ServingSynopsis serving;
  SnapshotPublisher publisher(&store, &serving);
  const QueryEngine engine;

  const std::vector<Rect> probes = {
      RectFromCenter(domain.xlo + 0.3 * domain.Width(),
                     domain.ylo + 0.4 * domain.Height(),
                     0.10 * domain.Width(), 0.10 * domain.Height()),
      RectFromCenter(domain.xlo + 0.7 * domain.Width(),
                     domain.ylo + 0.6 * domain.Height(),
                     0.25 * domain.Width(), 0.25 * domain.Height()),
  };
  std::vector<double> answers(probes.size());

  Rng noise_rng(7);
  std::printf(
      "publishing %d epochs into %s/ (total privacy cost: %d x epsilon=%g "
      "by sequential composition)\n",
      num_epochs, dir.c_str(), num_epochs, epsilon);
  for (int epoch = 1; epoch <= num_epochs; ++epoch) {
    // Each epoch re-scans the accumulated log, so the SAME points are
    // touched once per epoch and the releases compose sequentially: the
    // true end-to-end cost of this walkthrough is num_epochs * epsilon. A
    // production pipeline would split one total budget across epochs (or
    // partition points into disjoint epochs, where parallel composition
    // keeps the cost at epsilon). The streaming builder itself holds only
    // the m x m grid, never the points.
    const int64_t n = static_cast<int64_t>(epoch) * points_per_epoch;
    StreamingUniformGridBuilder builder(domain, epsilon, /*grid_size=*/0, n);
    for (int64_t i = 0; i < n; ++i) {
      builder.AddPoint(all_points.points()[static_cast<size_t>(i)]);
    }
    auto synopsis = FinishStreamingUniformGrid(std::move(builder), noise_rng);

    std::string error;
    const uint64_t version = publisher.Publish(
        "checkins", synopsis,
        SnapshotMeta{epsilon, "epoch-" + std::to_string(epoch)}, &error);
    if (version == 0) {
      std::fprintf(stderr, "publish failed: %s\n", error.c_str());
      return 1;
    }

    // Readers keep querying the serving slot; each batch is answered by
    // exactly one version (the one AnswerBatch returns).
    const uint64_t served = serving.AnswerBatch(engine, probes, answers);
    std::printf(
        "  epoch %d: %s -> %s, served v%llu: probe counts %.1f / %.1f\n",
        epoch, synopsis->Name().c_str(),
        SnapshotStore::FileName("checkins", version).c_str(),
        static_cast<unsigned long long>(served), answers[0], answers[1]);
  }

  // ---- simulated restart -------------------------------------------------
  // A fresh process (fresh SnapshotStore handle, no in-memory state) loads
  // the newest durable version and must reproduce the served answers bit
  // for bit — the snapshot carries the noisy counts and the prefix-sum
  // index, so no rebuild happens here.
  SnapshotStore reopened(dir);
  DecodedSnapshot loaded;
  uint64_t version = 0;
  std::string error;
  if (!reopened.LoadLatest("checkins", &loaded, &version, &error)) {
    std::fprintf(stderr, "reload failed: %s\n", error.c_str());
    return 1;
  }
  std::vector<double> reloaded_answers(probes.size());
  engine.AnswerAll(*loaded.synopsis, probes, reloaded_answers);
  const bool identical = reloaded_answers == answers;
  std::printf(
      "restart: reloaded %s v%llu (built with epsilon=%g, label '%s')\n",
      loaded.synopsis->Name().c_str(),
      static_cast<unsigned long long>(version), loaded.meta.epsilon,
      loaded.meta.label.c_str());
  std::printf("restart answers bitwise-identical to served: %s\n",
              identical ? "yes" : "NO");

  // ---- two-pass AG through the same pipeline -----------------------------
  StreamingAdaptiveGridBuilder ag_builder(domain, epsilon,
                                          AdaptiveGridOptions{},
                                          all_points.size());
  for (const Point2& p : all_points.points()) ag_builder.AddPointPass1(p);
  ag_builder.FinishLevel1(noise_rng);
  for (const Point2& p : all_points.points()) ag_builder.AddPointPass2(p);
  auto ag = FinishStreamingAdaptiveGrid(std::move(ag_builder), noise_rng);
  ServingSynopsis ag_serving;  // one serving slot per synopsis name
  SnapshotPublisher ag_publisher(&store, &ag_serving);
  const uint64_t ag_version =
      ag_publisher.Publish("checkins-ag", ag, SnapshotMeta{epsilon, "ag"},
                           &error);
  if (ag_version == 0) {
    std::fprintf(stderr, "AG publish failed: %s\n", error.c_str());
    return 1;
  }
  ag_serving.AnswerBatch(engine, probes, answers);
  std::printf("streamed AG %s published as v%llu, probe counts %.1f / %.1f\n",
              ag->Name().c_str(),
              static_cast<unsigned long long>(ag_version), answers[0],
              answers[1]);

  return identical ? 0 : 1;
}
