// dpgrid_experiments: the paper-reproduction experiment harness.
//
//   ./dpgrid_experiments [--smoke] [--figure N] [--out <dir>]
//
// Runs the evaluation grid of Qardaji-Yang-Li (ICDE 2013): every synopsis
// method (UG, AG, grid hierarchy, KD-standard, KD-hybrid, Privelet, plus
// the d-dimensional grids) × ε ∈ {0.01, 0.1, 1.0} × dataset × query-size
// class, with seeded fresh-noise trials answered through the batched
// QueryEngine, and writes:
//
//   <dir>/results.json   machine-readable results (byte-stable per seed)
//   <dir>/results.csv    long-format table for spreadsheets/pandas
//   <dir>/RESULTS.md     the generated Markdown report
//   <dir>/timings.json   per-(dataset, method) build/query wall time —
//                        measured, NOT byte-deterministic, which is why it
//                        is a separate file from results.json
//
// --figure N (1-6) narrows the run to the methods one paper figure needs
// (e.g. --figure 4 runs only UG and AG), regenerating that figure's
// tables in minutes instead of the full grid.
//
// --smoke runs the seconds-scale configuration CI uses (ctest label
// `experiments`). Env knobs: DPGRID_SEED, DPGRID_SCALE, DPGRID_TRIALS,
// DPGRID_QUERIES. Two runs with the same knobs produce byte-identical
// output files regardless of thread count.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "experiments/experiment.h"
#include "experiments/report.h"
#include "metrics/table.h"

using namespace dpgrid;
using namespace dpgrid::experiments;

int main(int argc, char** argv) {
  bool smoke = false;
  int figure = 0;
  std::string out_dir = "experiments-out";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--full") == 0) {
      smoke = false;
    } else if (std::strcmp(argv[i], "--figure") == 0 && i + 1 < argc) {
      figure = std::atoi(argv[++i]);
      if (figure < 1 || figure > 6) {
        std::fprintf(stderr, "--figure expects a paper figure in [1, 6]\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_dir = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: dpgrid_experiments [--smoke|--full] "
                   "[--figure N] [--out <dir>]\n");
      return 2;
    }
  }

  ExperimentConfig config =
      smoke ? ExperimentConfig::Smoke() : ExperimentConfig::Full();
  if (figure > 0) ApplyFigureFilter(&config, figure);
  config.ApplyEnv();

  std::printf("=== dpgrid_experiments (%s) ===\n", smoke ? "smoke" : "full");
  std::printf(
      "scale=%.3g trials=%d queries/size=%d sizes=%d seed=%llu epsilons=",
      config.scale, config.trials, config.queries_per_size, config.num_sizes,
      static_cast<unsigned long long>(config.seed));
  for (size_t i = 0; i < config.epsilons.size(); ++i) {
    std::printf("%s%g", i > 0 ? "," : "", config.epsilons[i]);
  }
  std::printf("\n(override via DPGRID_SEED / DPGRID_SCALE / DPGRID_TRIALS / "
              "DPGRID_QUERIES)\n\n");

  const ExperimentResults results = RunExperiments(config);

  // Console scoreboard: one pooled-mean table per dataset.
  for (const DatasetInfo& info : results.datasets) {
    const auto& cells =
        info.heatmap.empty() ? results.nd_cells : results.cells;
    std::vector<std::string> headers = {"method \\ eps"};
    for (double eps : config.epsilons) headers.push_back(FormatDouble(eps, 4));
    TablePrinter table(headers);
    std::vector<std::string> methods;
    for (const CellResult& c : cells) {
      if (c.dataset == info.name &&
          std::find(methods.begin(), methods.end(), c.method) ==
              methods.end()) {
        methods.push_back(c.method);
      }
    }
    for (const std::string& method : methods) {
      std::vector<std::string> row = {method};
      for (double eps : config.epsilons) {
        std::string value = "-";
        for (const CellResult& c : cells) {
          if (c.dataset == info.name && c.method == method &&
              c.epsilon == eps) {
            value = FormatDouble(c.rel.mean, 4);
          }
        }
        row.push_back(value);
      }
      table.AddRow(std::move(row));
    }
    std::printf("%s (N=%lld) — pooled mean relative error\n",
                info.name.c_str(), static_cast<long long>(info.n));
    table.Print();
    std::printf("\n");
  }

  size_t holds = 0;
  for (const OrderingCheck& o : results.ordering) {
    if (o.holds) ++holds;
  }
  if (!results.ordering.empty()) {
    std::printf("paper ordering AG <= UG <= worst baseline holds in %zu/%zu "
                "(dataset, epsilon) cells\n",
                holds, results.ordering.size());
  }

  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  std::string error;
  const std::string json_path = out_dir + "/results.json";
  const std::string csv_path = out_dir + "/results.csv";
  const std::string md_path = out_dir + "/RESULTS.md";
  const std::string timings_path = out_dir + "/timings.json";
  if (!WriteTextFile(json_path, ToJson(results), &error) ||
      !WriteTextFile(csv_path, ToCsv(results), &error) ||
      !WriteTextFile(md_path, ToMarkdown(results), &error) ||
      !WriteTextFile(timings_path, ToTimingsJson(results), &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  std::printf("wrote %s, %s, %s\n", json_path.c_str(), csv_path.c_str(),
              md_path.c_str());
  std::printf("wrote %s (wall-clock timings; not byte-deterministic)\n",
              timings_path.c_str());
  return 0;
}
