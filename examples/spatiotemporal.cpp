// spatiotemporal: differentially private release of (longitude, latitude,
// time) check-in data using the library's d-dimensional extension — the
// setting the paper's §IV-C dimensionality analysis anticipates.
//
//   $ ./examples/spatiotemporal [epsilon]
//
// Builds 3-D uniform and adaptive grids over a week of synthetic check-ins
// and answers "how many check-ins near city X during window T" queries.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include <chrono>
#include <vector>

#include "common/random.h"
#include "metrics/table.h"
#include "nd/adaptive_grid_nd.h"
#include "nd/dataset_nd.h"
#include "nd/guidelines_nd.h"
#include "nd/uniform_grid_nd.h"
#include "nd/workload_nd.h"
#include "query/query_engine.h"

int main(int argc, char** argv) {
  using namespace dpgrid;
  const double epsilon = (argc > 1) ? std::atof(argv[1]) : 1.0;

  // Domain: x in [-180,180), y in [-65,85), t in [0,168) hours (one week).
  Rng rng(99);
  BoxNd domain({-180.0, -65.0, 0.0}, {180.0, 85.0, 168.0});

  // Cities with daily activity rhythms: cluster centers recur every 24h.
  std::vector<ClusterNd> clusters;
  for (int city = 0; city < 25; ++city) {
    double cx = rng.Uniform(-170, 170);
    double cy = rng.Uniform(-50, 75);
    double weight = 1.0 / (city + 1.0);
    for (int day = 0; day < 7; ++day) {
      // Evening peak at hour 19 of each day.
      clusters.push_back(ClusterNd{
          {cx, cy, day * 24.0 + 19.0}, {2.0, 2.0, 3.0}, weight});
    }
  }
  const int64_t n = 500000;
  DatasetNd checkins = MakeGaussianMixtureNd(domain, n, clusters, 0.02, rng);
  std::printf("spatiotemporal check-ins: N=%lld over %s, epsilon=%.2f\n\n",
              static_cast<long long>(n), domain.ToString().c_str(), epsilon);

  // 3-D synopses with the generalized guidelines.
  UniformGridNd ug(checkins, epsilon, rng);
  AdaptiveGridNd ag(checkins, epsilon, rng);
  std::printf("built %s (generalized Guideline 1: m=%d per axis, %d^3 "
              "cells)\n",
              ug.Name().c_str(), ug.grid_size(), ug.grid_size());
  std::printf("built %s (m1=%d, %lld leaf cells)\n\n", ag.Name().c_str(),
              ag.level1_size(),
              static_cast<long long>(ag.TotalLeafCells()));

  // Analyst queries: spatial box x time window.
  struct NamedQuery {
    const char* what;
    BoxNd box;
  };
  const NamedQuery queries[] = {
      {"big city, Tuesday evening",
       BoxNd({clusters[0].center[0] - 4, clusters[0].center[1] - 4, 41.0},
             {clusters[0].center[0] + 4, clusters[0].center[1] + 4, 48.0})},
      {"same city, whole week",
       BoxNd({clusters[0].center[0] - 4, clusters[0].center[1] - 4, 0.0},
             {clusters[0].center[0] + 4, clusters[0].center[1] + 4, 168.0})},
      {"hemisphere, weekend",
       BoxNd({-180.0, -65.0, 120.0}, {0.0, 85.0, 168.0})},
      {"small town, one night",
       BoxNd({clusters.back().center[0] - 1, clusters.back().center[1] - 1,
              162.0},
             {clusters.back().center[0] + 1, clusters.back().center[1] + 1,
              168.0})},
  };

  TablePrinter table({"query", "true", "UG est", "AG est", "UG rel", "AG rel"});
  for (const NamedQuery& q : queries) {
    const double truth = static_cast<double>(checkins.CountInBox(q.box));
    const double ug_est = ug.Answer(q.box);
    const double ag_est = ag.Answer(q.box);
    const double rho = 0.001 * static_cast<double>(n);
    table.AddRow({q.what, FormatDouble(truth, 6), FormatDouble(ug_est, 6),
                  FormatDouble(ag_est, 6),
                  FormatDouble(std::abs(ug_est - truth) /
                                   std::max(truth, rho), 3),
                  FormatDouble(std::abs(ag_est - truth) /
                                   std::max(truth, rho), 3)});
  }
  table.Print();
  std::printf(
      "\nNote how coarse the per-axis resolution must be in 3-D (the "
      "generalized guideline: m ~ (2Ne/(3c))^(2/5)) — the curse of "
      "dimensionality the paper analyzes in §IV-C.\n");

  // A dashboard does not ask four questions, it asks half a million: stream
  // a full workload through the batched query engine (allocation-free
  // scalar path, sharded across threads, bitwise-identical to Answer).
  WorkloadNd dash = GenerateWorkloadNd(domain, {90.0, 37.5, 42.0}, 4, 50000,
                                       rng);
  std::vector<BoxNd> batch;
  for (const auto& group : dash.queries) {
    batch.insert(batch.end(), group.begin(), group.end());
  }
  QueryEngine engine;
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<double> answers = engine.AnswerAll(ug, batch);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  double mean = 0.0;
  for (double a : answers) mean += a / static_cast<double>(answers.size());
  std::printf(
      "\nquery engine: %zu 3-D box queries in %.1f ms (%.2fM QPS, %d "
      "thread(s)); mean estimate %.1f\n",
      batch.size(), secs * 1e3, batch.size() / secs / 1e6,
      engine.num_threads(), mean);
  return 0;
}
