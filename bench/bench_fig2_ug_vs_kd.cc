// Reproduces Figure 2 of the paper: KD-standard and KD-hybrid versus the
// uniform grid at several grid sizes, on all four datasets and both epsilon
// values. For each scenario we print the per-query-size mean relative error
// (the paper's line graphs) and the candlestick profile over all sizes.
//
// Paper expectation: a band of UG sizes around the Guideline-1 suggestion
// performs best; KD-hybrid is comparable to the best UG (slightly worse on
// road/storage); KD-standard is clearly worse; relative error peaks at
// middle query sizes.

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/factories.h"
#include "grid/guidelines.h"
#include "metrics/table.h"

namespace dpgrid {
namespace bench {
namespace {

void Run() {
  BenchConfig config = BenchConfig::FromEnv();
  PrintConfig("bench_fig2_ug_vs_kd (paper Figure 2)", config);

  for (const DatasetSpec& spec : PaperDatasets(config.scale)) {
    for (double eps : {0.1, 1.0}) {
      Scenario scenario = MakeScenario(spec, eps, config);
      const double n = static_cast<double>(scenario.dataset.size());
      const int suggested = ChooseUniformGridSize(n, eps);

      // UG sizes bracketing the suggestion, mirroring the paper's sweeps.
      std::set<int> sizes;
      for (double f : {0.25, 0.5, 0.75, 1.0, 1.5, 2.0}) {
        sizes.insert(std::max(2, static_cast<int>(std::lround(suggested * f))));
      }

      std::vector<MethodResult> methods;
      methods.push_back(
          RunMethod("Kst", MakeKdStandardFactory(), scenario, config));
      methods.push_back(
          RunMethod("Khy", MakeKdHybridFactory(), scenario, config));
      methods.push_back(RunMethod(
          "Qtr",
          [](const Dataset& d, double eps, Rng& rng) {
            return std::make_unique<KdTree>(d, eps, rng, QuadTreeOptions());
          },
          scenario, config));
      for (int m : sizes) {
        std::string name = "U" + std::to_string(m);
        if (m == suggested) name += "*";  // Guideline-1 suggestion
        methods.push_back(RunMethod(name, MakeUgFactory(m), scenario, config));
      }

      const std::string title = std::string("Fig.2 ") + spec.name +
                                ", eps=" + FormatDouble(eps, 2) +
                                " (* = Guideline 1)";
      PrintPerSizeTable(title, scenario.workload.size_labels, methods);
      PrintCandlestickTable(title, methods);
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace dpgrid

int main() {
  dpgrid::bench::Run();
  return 0;
}
