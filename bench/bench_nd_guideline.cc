// Extension bench: validates the d-dimensional generalization of
// Guideline 1 (see nd/guidelines_nd.h). For a 3-D spatiotemporal-style
// dataset we sweep the per-axis grid size of UniformGridNd and check that
// the generalized suggestion m* = (2Nε/(d·c))^(2/(d+2)) lands in the
// empirically optimal band, and that AdaptiveGridNd improves on it — the
// paper's 2-D story carried to d = 3.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "metrics/error.h"
#include "metrics/table.h"
#include "nd/adaptive_grid_nd.h"
#include "nd/dataset_nd.h"
#include "nd/guidelines_nd.h"
#include "nd/uniform_grid_nd.h"
#include "nd/workload_nd.h"

namespace dpgrid {
namespace bench {
namespace {

// Ground truth computed once per workload (brute force over the points is
// the honest exact answer in d dimensions, so cache it across methods).
std::vector<std::vector<double>> ExactAnswers(const DatasetNd& data,
                                              const WorkloadNd& workload) {
  std::vector<std::vector<double>> truth(workload.num_sizes());
  for (size_t s = 0; s < workload.num_sizes(); ++s) {
    truth[s].reserve(workload.queries[s].size());
    for (const BoxNd& q : workload.queries[s]) {
      truth[s].push_back(static_cast<double>(data.CountInBox(q)));
    }
  }
  return truth;
}

double MeanRelError(const SynopsisNd& synopsis, const WorkloadNd& workload,
                    const std::vector<std::vector<double>>& truth,
                    double rho) {
  double err = 0.0;
  int count = 0;
  for (size_t s = 0; s < workload.num_sizes(); ++s) {
    for (size_t i = 0; i < workload.queries[s].size(); ++i) {
      const double actual = truth[s][i];
      err += std::abs(synopsis.Answer(workload.queries[s][i]) - actual) /
             std::max(actual, rho);
      ++count;
    }
  }
  return err / count;
}

void Run() {
  BenchConfig config = BenchConfig::FromEnv();
  PrintConfig("bench_nd_guideline (3-D extension of Guideline 1)", config);

  Rng rng(config.seed);
  const BoxNd domain = BoxNd::Cube(3, 0, 100);
  const int64_t n =
      std::max<int64_t>(50000, static_cast<int64_t>(400000 * config.scale));
  std::vector<ClusterNd> clusters =
      MakeRandomClustersNd(domain, 40, 0.01, 0.06, 1.0, rng);
  DatasetNd data = MakeGaussianMixtureNd(domain, n, clusters, 0.1, rng);
  WorkloadNd workload = GenerateWorkloadNd(
      domain, {50, 50, 50}, 5, std::min(config.queries_per_size, 100), rng);
  const std::vector<std::vector<double>> truth = ExactAnswers(data, workload);
  const double rho = 0.001 * static_cast<double>(n);

  for (double eps : {0.1, 1.0}) {
    const int suggested =
        ChooseUniformGridSizeNd(static_cast<double>(n), eps, 3);
    std::set<int> sizes;
    for (double f : {0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0}) {
      sizes.insert(std::max(2, static_cast<int>(std::lround(suggested * f))));
    }

    std::printf("\n3-D dataset N=%lld, eps=%g, suggested m=%d\n",
                static_cast<long long>(n), eps, suggested);
    TablePrinter table({"method", "mean rel err"});
    for (int m : sizes) {
      double err = 0.0;
      for (int t = 0; t < config.trials; ++t) {
        Rng trial(config.seed + 31 * static_cast<uint64_t>(t + 1));
        UniformGridNdOptions opts;
        opts.grid_size = m;
        UniformGridNd ug(data, eps, trial, opts);
        err += MeanRelError(ug, workload, truth, rho) / config.trials;
      }
      std::string label = "U3d-" + std::to_string(m);
      if (m == suggested) label += "*";
      table.AddRow({label, FormatDouble(err, 4)});
    }
    {
      double err = 0.0;
      int m1 = 0;
      for (int t = 0; t < config.trials; ++t) {
        Rng trial(config.seed + 77 * static_cast<uint64_t>(t + 1));
        AdaptiveGridNd ag(data, eps, trial);
        m1 = ag.level1_size();
        err += MeanRelError(ag, workload, truth, rho) / config.trials;
      }
      table.AddRow({"A3d-" + std::to_string(m1), FormatDouble(err, 4)});
    }
    table.Print();
  }
  std::printf(
      "\nExpected shape: the starred suggestion sits in the optimal band and "
      "the 3-D adaptive grid beats every uniform size.\n");
}

}  // namespace
}  // namespace bench
}  // namespace dpgrid

int main() {
  dpgrid::bench::Run();
  return 0;
}
