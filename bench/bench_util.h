#ifndef DPGRID_BENCH_BENCH_UTIL_H_
#define DPGRID_BENCH_BENCH_UTIL_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "data/generators.h"
#include "geo/dataset.h"
#include "grid/synopsis.h"
#include "index/range_count_index.h"
#include "metrics/error.h"
#include "query/workload.h"

namespace dpgrid {
namespace bench {

/// Integer env knob with a fallback (empty/unset uses the fallback) —
/// shared by every bench harness instead of per-binary copies.
int64_t EnvInt(const char* name, int64_t fallback);

/// A per-process scratch directory under the system temp dir, removed on
/// destruction (RAII: early-exit paths clean up too). The PID suffix keeps
/// concurrent bench runs from colliding on a shared /tmp.
class ScratchDir {
 public:
  /// Creates `<tmp>/<prefix>.<pid>` fresh (removing any stale leftover
  /// from a crashed run with the same PID).
  explicit ScratchDir(const std::string& prefix);
  ~ScratchDir();

  ScratchDir(const ScratchDir&) = delete;
  ScratchDir& operator=(const ScratchDir&) = delete;

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Monotonic wall-clock seconds, for best-of-reps timing loops.
double NowSeconds();

/// Runtime knobs shared by every bench binary, read from the environment:
///   DPGRID_SCALE    dataset scale in (0,1], default 1.0 (paper scale)
///   DPGRID_TRIALS   fresh-noise trials per method, default 3
///   DPGRID_QUERIES  queries per size, default 200 (the paper's value)
///   DPGRID_SEED     base RNG seed, default 20130408
struct BenchConfig {
  double scale = 1.0;
  int trials = 3;
  int queries_per_size = 200;
  uint64_t seed = 20130408;

  static BenchConfig FromEnv();
};

/// Builds a synopsis for one trial. The rng is already forked per trial.
using SynopsisFactory = std::function<std::unique_ptr<Synopsis>(
    const Dataset& dataset, double epsilon, Rng& rng)>;

/// Aggregated accuracy of one method on one (dataset, epsilon) scenario.
struct MethodResult {
  std::string name;
  /// Mean relative error per query size (averaged over trials).
  std::vector<double> mean_rel_by_size;
  /// Candlestick stats over all sizes and trials.
  Summary rel_summary;
  Summary abs_summary;
};

/// One prepared evaluation scenario.
struct Scenario {
  std::string dataset_name;
  double epsilon = 1.0;
  Dataset dataset;
  RangeCountIndex truth;
  Workload workload;
  double rho = 1.0;
};

/// Generates a scenario from a dataset spec. The workload shape follows the
/// paper (6 sizes, Table II q6 extents).
Scenario MakeScenario(const DatasetSpec& spec, double epsilon,
                      const BenchConfig& config);

/// Builds `factory` `config.trials` times with fresh noise and evaluates
/// each build on the scenario's workload. Runs through the shared
/// experiments::RunTrialGrid fan-out: trials are sharded across the
/// process-wide pool, per-trial noise comes from the derived stream keyed
/// by (dataset, label), and aggregation order is fixed — so results are
/// deterministic under config.seed and a label reproduces the same
/// numbers in every figure harness.
MethodResult RunMethod(const std::string& name, const SynopsisFactory& factory,
                       const Scenario& scenario, const BenchConfig& config);

/// Prints per-size mean relative errors (the paper's line graphs) for a set
/// of methods.
void PrintPerSizeTable(const std::string& title,
                       const std::vector<std::string>& size_labels,
                       const std::vector<MethodResult>& methods);

/// Prints candlestick summaries over all query sizes (the paper's
/// candlestick plots), for relative or absolute error.
void PrintCandlestickTable(const std::string& title,
                           const std::vector<MethodResult>& methods,
                           bool absolute = false);

/// Prints the bench configuration banner.
void PrintConfig(const char* bench_name, const BenchConfig& config);

}  // namespace bench
}  // namespace dpgrid

#endif  // DPGRID_BENCH_BENCH_UTIL_H_
