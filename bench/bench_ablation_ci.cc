// Ablation of the design choices DESIGN.md calls out for the adaptive grid:
//   1. constrained inference on/off (paper §IV-B applies it; how much does
//      it buy?),
//   2. the alpha budget split (paper: [0.2, 0.6] all behave similarly),
//   3. the noisy-N estimate for Guideline 1 (spending a small budget
//      fraction on estimating N barely moves the error).

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/factories.h"
#include "grid/adaptive_grid.h"
#include "grid/uniform_grid.h"
#include "metrics/table.h"

namespace dpgrid {
namespace bench {
namespace {

SynopsisFactory MakeAgNoCiFactory() {
  return [](const Dataset& d, double eps, Rng& rng) {
    AdaptiveGridOptions opts;
    opts.constrained_inference = false;
    return std::make_unique<AdaptiveGrid>(d, eps, rng, opts);
  };
}

SynopsisFactory MakeAgAlphaFactory(double alpha) {
  return [alpha](const Dataset& d, double eps, Rng& rng) {
    AdaptiveGridOptions opts;
    opts.alpha = alpha;
    return std::make_unique<AdaptiveGrid>(d, eps, rng, opts);
  };
}

SynopsisFactory MakeUgNoisyNFactory(double fraction) {
  return [fraction](const Dataset& d, double eps, Rng& rng) {
    UniformGridOptions opts;
    opts.n_estimate_fraction = fraction;
    return std::make_unique<UniformGrid>(d, eps, rng, opts);
  };
}

void Run() {
  BenchConfig config = BenchConfig::FromEnv();
  PrintConfig("bench_ablation_ci (AG design choices)", config);

  for (const DatasetSpec& spec : PaperDatasets(config.scale)) {
    const std::string name = spec.name;
    if (name != "checkin" && name != "landmark") continue;
    for (double eps : {0.1, 1.0}) {
      Scenario scenario = MakeScenario(spec, eps, config);
      const std::string title = std::string("Ablation ") + spec.name +
                                ", eps=" + FormatDouble(eps, 2);

      std::vector<MethodResult> methods;
      methods.push_back(
          RunMethod("AG (with CI)", MakeAgFactory(), scenario, config));
      methods.push_back(
          RunMethod("AG (no CI)", MakeAgNoCiFactory(), scenario, config));
      for (double alpha : {0.2, 0.4, 0.6, 0.8}) {
        methods.push_back(RunMethod("AG alpha=" + FormatDouble(alpha, 2),
                                    MakeAgAlphaFactory(alpha), scenario,
                                    config));
      }
      methods.push_back(
          RunMethod("UG (exact N)", MakeUgFactory(), scenario, config));
      methods.push_back(RunMethod("UG (noisy N, 1% budget)",
                                  MakeUgNoisyNFactory(0.01), scenario,
                                  config));
      PrintCandlestickTable(title, methods);
    }
  }
  std::printf(
      "\nExpected shape: CI helps AG modestly; alpha in [0.2,0.6] is flat "
      "with 0.8 worse; the noisy-N estimate costs almost nothing.\n");
}

}  // namespace
}  // namespace bench
}  // namespace dpgrid

int main() {
  dpgrid::bench::Run();
  return 0;
}
