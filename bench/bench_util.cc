#include "bench/bench_util.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include <signal.h>
#include <unistd.h>

#include <cerrno>

#include "common/check.h"
#include "common/clock.h"
#include "common/env.h"
#include "experiments/experiment.h"
#include "metrics/table.h"
#include "query/evaluator.h"

namespace dpgrid {
namespace bench {

int64_t EnvInt(const char* name, int64_t fallback) {
  return EnvInt64(name, fallback);
}

double NowSeconds() { return dpgrid::NowSeconds(); }

ScratchDir::ScratchDir(const std::string& prefix) {
  const std::filesystem::path tmp = std::filesystem::temp_directory_path();
  // Self-heal: sweep <prefix>.<pid> leftovers whose owning process is gone
  // (SIGKILL / OOM skipped the destructor), so crashed runs cannot
  // accumulate on a long-lived machine. Live PIDs are left alone — that is
  // the concurrent run the per-PID suffix exists to protect.
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(tmp, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(prefix + ".", 0) != 0) continue;
    const std::string suffix = name.substr(prefix.size() + 1);
    char* end = nullptr;
    const long long pid = std::strtoll(suffix.c_str(), &end, 10);
    if (end == suffix.c_str() || *end != '\0' || pid <= 0) continue;
    if (::kill(static_cast<pid_t>(pid), 0) != 0 && errno == ESRCH) {
      std::filesystem::remove_all(entry.path(), ec);
    }
  }
  path_ = (tmp / (prefix + "." +
                  std::to_string(static_cast<long long>(::getpid()))))
              .string();
  std::filesystem::remove_all(path_);
  std::filesystem::create_directories(path_);
}

ScratchDir::~ScratchDir() {
  std::error_code ec;  // best effort; never throw out of a destructor
  std::filesystem::remove_all(path_, ec);
}

BenchConfig BenchConfig::FromEnv() {
  BenchConfig c;
  c.scale = EnvDouble("DPGRID_SCALE", 1.0);
  c.trials = static_cast<int>(EnvInt("DPGRID_TRIALS", 3));
  c.queries_per_size = static_cast<int>(EnvInt("DPGRID_QUERIES", 200));
  c.seed = static_cast<uint64_t>(EnvInt("DPGRID_SEED", 20130408));
  DPGRID_CHECK(c.scale > 0.0 && c.scale <= 1.0);
  DPGRID_CHECK(c.trials >= 1);
  DPGRID_CHECK(c.queries_per_size >= 1);
  return c;
}

Scenario MakeScenario(const DatasetSpec& spec, double epsilon,
                      const BenchConfig& config) {
  Rng data_rng(config.seed);
  Dataset dataset = spec.make(spec.n, data_rng);
  RangeCountIndex truth(dataset);
  Rng workload_rng(config.seed + 1);
  Workload workload =
      GenerateWorkload(dataset.domain(), spec.q_max_w, spec.q_max_h, 6,
                       config.queries_per_size, workload_rng);
  double rho = DefaultRho(static_cast<double>(dataset.size()));
  return Scenario{spec.name, epsilon, std::move(dataset), std::move(truth),
                  std::move(workload), rho};
}

MethodResult RunMethod(const std::string& name, const SynopsisFactory& factory,
                       const Scenario& scenario, const BenchConfig& config) {
  // A one-cell trial grid through the shared experiments fan-out: the
  // figure harnesses draw per-trial noise from the same derived streams
  // as the report pipeline (keyed by label, so the same label reproduces
  // the same numbers in every figure) and aggregate in the same fixed
  // order, with trials sharded across the process-wide pool.
  experiments::ExperimentConfig grid_config;
  grid_config.scale = config.scale;
  grid_config.trials = config.trials;
  grid_config.queries_per_size = config.queries_per_size;
  grid_config.num_sizes = static_cast<int>(scenario.workload.num_sizes());
  grid_config.seed = config.seed;
  grid_config.epsilons = {scenario.epsilon};
  int64_t queries_per_trial = 0;
  for (const auto& group : scenario.workload.queries) {
    queries_per_trial += static_cast<int64_t>(group.size());
  }
  const std::vector<experiments::CellResult> cells = experiments::RunTrialGrid(
      scenario.dataset_name, experiments::StreamKey(scenario.dataset_name),
      {name}, {experiments::StreamKey(name)}, scenario.workload.num_sizes(),
      grid_config, queries_per_trial,
      [&](size_t, size_t, Rng& rng, double* build_seconds) {
        const double t0 = NowSeconds();
        std::unique_ptr<Synopsis> synopsis =
            factory(scenario.dataset, scenario.epsilon, rng);
        *build_seconds = NowSeconds() - t0;
        return EvaluateSynopsis(*synopsis, scenario.workload, scenario.truth,
                                scenario.rho);
      },
      nullptr);
  DPGRID_CHECK(cells.size() == 1);
  MethodResult result;
  result.name = name;
  result.mean_rel_by_size = cells[0].mean_rel_by_size;
  result.rel_summary = cells[0].rel;
  result.abs_summary = cells[0].abs;
  return result;
}

void PrintPerSizeTable(const std::string& title,
                       const std::vector<std::string>& size_labels,
                       const std::vector<MethodResult>& methods) {
  std::printf("\n%s — mean relative error per query size\n", title.c_str());
  std::vector<std::string> headers = {"method"};
  headers.insert(headers.end(), size_labels.begin(), size_labels.end());
  TablePrinter table(headers);
  for (const MethodResult& m : methods) {
    std::vector<std::string> row = {m.name};
    for (double v : m.mean_rel_by_size) row.push_back(FormatDouble(v, 4));
    table.AddRow(std::move(row));
  }
  table.Print();
}

void PrintCandlestickTable(const std::string& title,
                           const std::vector<MethodResult>& methods,
                           bool absolute) {
  std::printf("\n%s — %s error profile over all query sizes\n", title.c_str(),
              absolute ? "absolute" : "relative");
  TablePrinter table({"method", "p25", "median", "p75", "p95", "mean"});
  for (const MethodResult& m : methods) {
    const Summary& s = absolute ? m.abs_summary : m.rel_summary;
    table.AddRow({m.name, FormatDouble(s.p25, 4), FormatDouble(s.p50, 4),
                  FormatDouble(s.p75, 4), FormatDouble(s.p95, 4),
                  FormatDouble(s.mean, 4)});
  }
  table.Print();
}

void PrintConfig(const char* bench_name, const BenchConfig& config) {
  std::printf(
      "=== %s ===\n"
      "scale=%.3g (of paper dataset sizes), trials=%d, queries/size=%d, "
      "seed=%llu\n"
      "(override via DPGRID_SCALE / DPGRID_TRIALS / DPGRID_QUERIES / "
      "DPGRID_SEED)\n",
      bench_name, config.scale, config.trials, config.queries_per_size,
      static_cast<unsigned long long>(config.seed));
}

}  // namespace bench
}  // namespace dpgrid
