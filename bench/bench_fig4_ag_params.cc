// Reproduces Figure 4 of the paper: the AG parameter study on checkin and
// landmark.
//   Column 1: AG at several m1 values vs the suggested UG and Privelet,
//             across query sizes.
//   Column 2: sensitivity to m1 (candlesticks).
//   Columns 3-4: sensitivity to alpha (0.25 / 0.5 / 0.75) and c2 (5/10/15)
//             at two fixed m1 values.
//
// Paper expectation: AG beats UG and Privelet across all query sizes; AG is
// less sensitive to m1 than UG is to m; c2 = 5 clearly beats 10 and 15;
// alpha = 0.25 and 0.5 are similar, 0.75 is worse.

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/factories.h"
#include "grid/guidelines.h"
#include "metrics/table.h"

namespace dpgrid {
namespace bench {
namespace {

void Run() {
  BenchConfig config = BenchConfig::FromEnv();
  PrintConfig("bench_fig4_ag_params (paper Figure 4)", config);

  for (const DatasetSpec& spec : PaperDatasets(config.scale)) {
    const std::string name = spec.name;
    if (name != "checkin" && name != "landmark") continue;  // as in paper
    for (double eps : {0.1, 1.0}) {
      Scenario scenario = MakeScenario(spec, eps, config);
      const double n = static_cast<double>(scenario.dataset.size());
      const int ug_suggested = ChooseUniformGridSize(n, eps);
      const int m1_suggested = ChooseAdaptiveLevel1Size(n, eps);
      const std::string title_base = std::string("Fig.4 ") + spec.name +
                                     ", eps=" + FormatDouble(eps, 2);

      // --- Columns 1-2: AG across m1, against UG and Privelet -------------
      std::vector<MethodResult> methods;
      methods.push_back(RunMethod("U" + std::to_string(ug_suggested),
                                  MakeUgFactory(ug_suggested), scenario,
                                  config));
      methods.push_back(RunMethod("W" + std::to_string(ug_suggested),
                                  MakeWaveletFactory(ug_suggested), scenario,
                                  config));
      std::set<int> m1_values;
      for (double f : {0.4, 0.65, 1.0, 1.5, 2.5, 4.0}) {
        m1_values.insert(
            std::max(4, static_cast<int>(std::lround(m1_suggested * f))));
      }
      for (int m1 : m1_values) {
        std::string label = "A" + std::to_string(m1) + ",5";
        if (m1 == m1_suggested) label += "*";
        methods.push_back(
            RunMethod(label, MakeAgFactory(m1), scenario, config));
      }
      PrintPerSizeTable(title_base + " — vary m1 (suggested m1=" +
                            std::to_string(m1_suggested) + ")",
                        scenario.workload.size_labels, methods);
      PrintCandlestickTable(title_base + " — vary m1", methods);

      // --- Columns 3-4: alpha x c2 grids at two fixed m1 ------------------
      for (int m1 : {m1_suggested, 2 * m1_suggested}) {
        std::vector<MethodResult> param_methods;
        for (double alpha : {0.25, 0.5, 0.75}) {
          for (double c2 : {5.0, 10.0, 15.0}) {
            std::string label = "a=" + FormatDouble(alpha, 2) +
                                ",c2=" + FormatDouble(c2, 2);
            param_methods.push_back(RunMethod(
                label, MakeAgFactory(m1, alpha, c2), scenario, config));
          }
        }
        PrintCandlestickTable(
            title_base + " — fix m1=" + std::to_string(m1) +
                ", vary alpha and c2",
            param_methods);
      }
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace dpgrid

int main() {
  dpgrid::bench::Run();
  return 0;
}
