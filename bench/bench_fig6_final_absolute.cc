// Reproduces Figure 6 of the paper: the same six-way final comparison as
// Figure 5, but under absolute error (the paper plots these on a log
// scale because the ranges are wide).
//
// Paper expectation: AG methods again consistently win. Notably, on the
// road dataset UG at the *suggested* size outperforms UG at the size that
// optimizes relative error — the error analysis behind Guideline 1 does not
// depend on the choice of metric, and absolute error vindicates it.

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/factories.h"
#include "grid/guidelines.h"
#include "metrics/table.h"

namespace dpgrid {
namespace bench {
namespace {

int FindBestSizeRelative(const Scenario& scenario, const BenchConfig& config,
                         int center, int floor_value, bool adaptive) {
  std::set<int> sizes;
  for (double f : {0.25, 0.5, 0.75, 1.0, 1.5, 2.0}) {
    sizes.insert(
        std::max(floor_value, static_cast<int>(std::lround(center * f))));
  }
  int best = center;
  double best_err = 1e300;
  BenchConfig sweep_config = config;
  sweep_config.trials = 1;
  for (int m : sizes) {
    SynopsisFactory factory = adaptive ? MakeAgFactory(m) : MakeUgFactory(m);
    MethodResult r = RunMethod("sweep", factory, scenario, sweep_config);
    if (r.rel_summary.mean < best_err) {
      best_err = r.rel_summary.mean;
      best = m;
    }
  }
  return best;
}

void Run() {
  BenchConfig config = BenchConfig::FromEnv();
  PrintConfig("bench_fig6_final_absolute (paper Figure 6)", config);

  for (const DatasetSpec& spec : PaperDatasets(config.scale)) {
    for (double eps : {0.1, 1.0}) {
      Scenario scenario = MakeScenario(spec, eps, config);
      const double n = static_cast<double>(scenario.dataset.size());
      const int ug_suggested = ChooseUniformGridSize(n, eps);
      const int m1_suggested = ChooseAdaptiveLevel1Size(n, eps);
      // As in the paper, the "best" sizes are the ones optimizing relative
      // error; Figure 6 then evaluates them under absolute error.
      const int ug_best = FindBestSizeRelative(scenario, config, ug_suggested,
                                               2, /*adaptive=*/false);
      const int m1_best = FindBestSizeRelative(scenario, config, m1_suggested,
                                               4, /*adaptive=*/true);

      std::vector<MethodResult> methods;
      methods.push_back(
          RunMethod("Khy", MakeKdHybridFactory(), scenario, config));
      methods.push_back(RunMethod("U" + std::to_string(ug_best),
                                  MakeUgFactory(ug_best), scenario, config));
      methods.push_back(RunMethod("W" + std::to_string(ug_best),
                                  MakeWaveletFactory(ug_best), scenario,
                                  config));
      methods.push_back(RunMethod("A" + std::to_string(m1_best) + ",5",
                                  MakeAgFactory(m1_best), scenario, config));
      methods.push_back(RunMethod("U" + std::to_string(ug_suggested) + "*",
                                  MakeUgFactory(ug_suggested), scenario,
                                  config));
      methods.push_back(RunMethod("A" + std::to_string(m1_suggested) + ",5*",
                                  MakeAgFactory(m1_suggested), scenario,
                                  config));

      const std::string title = std::string("Fig.6 ") + spec.name +
                                ", eps=" + FormatDouble(eps, 2) +
                                " (* = suggested sizes)";
      PrintCandlestickTable(title, methods, /*absolute=*/true);
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace dpgrid

int main() {
  dpgrid::bench::Run();
  return 0;
}
