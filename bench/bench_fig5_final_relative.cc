// Reproduces Figure 5 of the paper: the final six-way comparison under
// relative error, on all four datasets and both epsilon values:
//   Khy              KD-hybrid
//   U<best>          UG at the empirically best size (small sweep)
//   W<best>          Privelet at that size
//   A<best m1>       AG at the empirically best m1 (small sweep)
//   U<sugg>          UG at the Guideline-1 size
//   A<sugg m1>       AG at the suggested m1
//
// Paper expectation: AG variants consistently and significantly beat all
// non-AG methods; UG at the suggested size roughly matches KD-hybrid.

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/factories.h"
#include "grid/guidelines.h"
#include "metrics/table.h"

namespace dpgrid {
namespace bench {
namespace {

// Sweeps sizes and returns the one with the lowest pooled mean rel. error.
int FindBestSize(const Scenario& scenario, const BenchConfig& config,
                 int center, int floor_value, bool adaptive) {
  std::set<int> sizes;
  for (double f : {0.25, 0.5, 0.75, 1.0, 1.5, 2.0}) {
    sizes.insert(
        std::max(floor_value, static_cast<int>(std::lround(center * f))));
  }
  int best = center;
  double best_err = 1e300;
  // One-trial sweeps keep this affordable; final numbers are re-measured
  // with full trials below.
  BenchConfig sweep_config = config;
  sweep_config.trials = 1;
  for (int m : sizes) {
    SynopsisFactory factory =
        adaptive ? MakeAgFactory(m) : MakeUgFactory(m);
    MethodResult r = RunMethod("sweep", factory, scenario, sweep_config);
    if (r.rel_summary.mean < best_err) {
      best_err = r.rel_summary.mean;
      best = m;
    }
  }
  return best;
}

void Run() {
  BenchConfig config = BenchConfig::FromEnv();
  PrintConfig("bench_fig5_final_relative (paper Figure 5)", config);

  for (const DatasetSpec& spec : PaperDatasets(config.scale)) {
    for (double eps : {0.1, 1.0}) {
      Scenario scenario = MakeScenario(spec, eps, config);
      const double n = static_cast<double>(scenario.dataset.size());
      const int ug_suggested = ChooseUniformGridSize(n, eps);
      const int m1_suggested = ChooseAdaptiveLevel1Size(n, eps);
      const int ug_best =
          FindBestSize(scenario, config, ug_suggested, 2, /*adaptive=*/false);
      const int m1_best =
          FindBestSize(scenario, config, m1_suggested, 4, /*adaptive=*/true);

      std::vector<MethodResult> methods;
      methods.push_back(
          RunMethod("Khy", MakeKdHybridFactory(), scenario, config));
      methods.push_back(RunMethod("U" + std::to_string(ug_best),
                                  MakeUgFactory(ug_best), scenario, config));
      methods.push_back(RunMethod("W" + std::to_string(ug_best),
                                  MakeWaveletFactory(ug_best), scenario,
                                  config));
      methods.push_back(RunMethod("A" + std::to_string(m1_best) + ",5",
                                  MakeAgFactory(m1_best), scenario, config));
      methods.push_back(RunMethod("U" + std::to_string(ug_suggested) + "*",
                                  MakeUgFactory(ug_suggested), scenario,
                                  config));
      methods.push_back(RunMethod("A" + std::to_string(m1_suggested) + ",5*",
                                  MakeAgFactory(m1_suggested), scenario,
                                  config));

      const std::string title = std::string("Fig.5 ") + spec.name +
                                ", eps=" + FormatDouble(eps, 2) +
                                " (* = suggested sizes)";
      PrintPerSizeTable(title, scenario.workload.size_labels, methods);
      PrintCandlestickTable(title, methods);
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace dpgrid

int main() {
  dpgrid::bench::Run();
  return 0;
}
