// Reproduces Table II of the paper: for every dataset and epsilon, the grid
// size suggested by Guideline 1 versus the empirically best-performing UG
// sizes, and the suggested AG m1 versus the best-performing m1 values.
//
// Paper expectation: the suggested UG size falls inside (or near) the
// observed optimal range on every dataset except road (whose unusually high
// uniformity favors smaller grids under relative error), and the best AG m1
// range sits well below the UG range.

#include <algorithm>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/factories.h"
#include "grid/guidelines.h"
#include "metrics/table.h"

namespace dpgrid {
namespace bench {
namespace {

// Geometric sweep around a center value.
std::vector<int> SweepAround(int center, int floor_value) {
  const double factors[] = {0.125, 0.1875, 0.25, 0.375, 0.5, 0.75,
                            1.0,   1.5,    2.0,  3.0,   4.0};
  std::set<int> sizes;
  for (double f : factors) {
    int v = std::max(floor_value,
                     static_cast<int>(std::lround(center * f)));
    sizes.insert(v);
  }
  return std::vector<int>(sizes.begin(), sizes.end());
}

// Range of sweep values whose mean relative error is within 20% of the best.
std::string NearOptimalRange(const std::vector<int>& sizes,
                             const std::vector<double>& errors) {
  double best = *std::min_element(errors.begin(), errors.end());
  int lo = 0;
  int hi = 0;
  bool first = true;
  for (size_t i = 0; i < sizes.size(); ++i) {
    if (errors[i] <= best * 1.2) {
      if (first) {
        lo = sizes[i];
        first = false;
      }
      hi = sizes[i];
    }
  }
  return std::to_string(lo) + "-" + std::to_string(hi);
}

void Run() {
  BenchConfig config = BenchConfig::FromEnv();
  PrintConfig("bench_table2_grid_sizes (paper Table II)", config);

  TablePrinter table({"dataset", "N", "eps", "UG sugg.", "UG best range",
                      "UG err@sugg", "AG m1 sugg.", "AG m1 best range"});

  for (const DatasetSpec& spec : PaperDatasets(config.scale)) {
    for (double eps : {1.0, 0.1}) {
      Scenario scenario = MakeScenario(spec, eps, config);
      const double n = static_cast<double>(scenario.dataset.size());
      const int ug_suggested = ChooseUniformGridSize(n, eps);
      const int m1_suggested = ChooseAdaptiveLevel1Size(n, eps);

      // UG sweep.
      std::vector<int> ug_sizes = SweepAround(ug_suggested, 2);
      std::vector<double> ug_errors;
      double err_at_suggested = 0.0;
      for (int m : ug_sizes) {
        MethodResult r = RunMethod("U" + std::to_string(m), MakeUgFactory(m),
                                   scenario, config);
        ug_errors.push_back(r.rel_summary.mean);
        if (m == ug_suggested) err_at_suggested = r.rel_summary.mean;
      }

      // AG m1 sweep.
      std::vector<int> m1_sizes = SweepAround(std::max(m1_suggested, 12), 4);
      std::vector<double> m1_errors;
      for (int m1 : m1_sizes) {
        MethodResult r = RunMethod("A" + std::to_string(m1),
                                   MakeAgFactory(m1), scenario, config);
        m1_errors.push_back(r.rel_summary.mean);
      }

      table.AddRow({spec.name, std::to_string(scenario.dataset.size()),
                    FormatDouble(eps, 2), std::to_string(ug_suggested),
                    NearOptimalRange(ug_sizes, ug_errors),
                    FormatDouble(err_at_suggested, 4),
                    std::to_string(m1_suggested),
                    NearOptimalRange(m1_sizes, m1_errors)});
      std::printf("  done: %s eps=%g\n", spec.name, eps);
    }
  }
  std::printf("\nTable II reproduction (ranges = sizes within 20%% of the "
              "sweep's best mean relative error)\n");
  std::printf("Paper values at full scale: road 400/126, checkin 316/100, "
              "landmark 300/95, storage 30/10 (UG sugg., eps=1/eps=0.1)\n");
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace dpgrid

int main() {
  dpgrid::bench::Run();
  return 0;
}
