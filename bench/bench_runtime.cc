// Runtime/efficiency benchmarks backing the paper's §IV-C claims: UG and AG
// are conceptually simple and far cheaper to build than deep recursive
// partitioning trees (KD-standard / KD-hybrid), and grid synopses answer
// queries in (near-)constant time.
//
// This is a google-benchmark binary; all other bench_* binaries are accuracy
// harnesses that print the paper's tables/figures.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "common/random.h"
#include "data/generators.h"
#include "grid/adaptive_grid.h"
#include "grid/uniform_grid.h"
#include "hier/hierarchy_grid.h"
#include "kd/kd_tree.h"
#include "query/query_engine.h"
#include "wavelet/privelet.h"

namespace dpgrid {
namespace {

// Shared dataset: checkin-like, 200k points (kept moderate so the full
// google-benchmark suite stays quick; scale the conclusions linearly).
const Dataset& SharedDataset() {
  static const Dataset* dataset = [] {
    Rng rng(7);
    return new Dataset(MakeCheckinLike(200000, rng));
  }();
  return *dataset;
}

void BM_BuildUniformGrid(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    UniformGrid ug(SharedDataset(), 1.0, rng);
    benchmark::DoNotOptimize(ug.grid_size());
  }
}
BENCHMARK(BM_BuildUniformGrid)->Unit(benchmark::kMillisecond);

void BM_BuildAdaptiveGrid(benchmark::State& state) {
  Rng rng(2);
  for (auto _ : state) {
    AdaptiveGrid ag(SharedDataset(), 1.0, rng);
    benchmark::DoNotOptimize(ag.level1_size());
  }
}
BENCHMARK(BM_BuildAdaptiveGrid)->Unit(benchmark::kMillisecond);

void BM_BuildPrivelet(benchmark::State& state) {
  Rng rng(3);
  for (auto _ : state) {
    Privelet w(SharedDataset(), 1.0, rng);
    benchmark::DoNotOptimize(w.grid_size());
  }
}
BENCHMARK(BM_BuildPrivelet)->Unit(benchmark::kMillisecond);

void BM_BuildHierarchy360(benchmark::State& state) {
  Rng rng(4);
  HierarchyGridOptions opts;
  opts.leaf_size = 360;
  opts.branching = 2;
  opts.depth = 4;
  for (auto _ : state) {
    HierarchyGrid h(SharedDataset(), 1.0, rng, opts);
    benchmark::DoNotOptimize(h.LevelSize(0));
  }
}
BENCHMARK(BM_BuildHierarchy360)->Unit(benchmark::kMillisecond);

void BM_BuildKdStandard(benchmark::State& state) {
  Rng rng(5);
  for (auto _ : state) {
    KdTree tree(SharedDataset(), 1.0, rng, KdStandardOptions());
    benchmark::DoNotOptimize(tree.num_nodes());
  }
}
BENCHMARK(BM_BuildKdStandard)->Unit(benchmark::kMillisecond);

void BM_BuildKdHybrid(benchmark::State& state) {
  Rng rng(6);
  for (auto _ : state) {
    KdTree tree(SharedDataset(), 1.0, rng, KdHybridOptions());
    benchmark::DoNotOptimize(tree.num_nodes());
  }
}
BENCHMARK(BM_BuildKdHybrid)->Unit(benchmark::kMillisecond);

// --- Query answering -------------------------------------------------------

template <typename SynopsisT>
const SynopsisT& SharedSynopsis() {
  static const SynopsisT* synopsis = [] {
    Rng rng(8);
    return new SynopsisT(SharedDataset(), 1.0, rng);
  }();
  return *synopsis;
}

Rect RandomQuery(Rng& rng, const Rect& domain) {
  double w = rng.Uniform(5.0, domain.Width() / 2);
  double h = rng.Uniform(5.0, domain.Height() / 2);
  double xlo = rng.Uniform(domain.xlo, domain.xhi - w);
  double ylo = rng.Uniform(domain.ylo, domain.yhi - h);
  return Rect{xlo, ylo, xlo + w, ylo + h};
}

void BM_QueryUniformGrid(benchmark::State& state) {
  const auto& ug = SharedSynopsis<UniformGrid>();
  Rng rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ug.Answer(RandomQuery(rng, SharedDataset().domain())));
  }
}
BENCHMARK(BM_QueryUniformGrid);

void BM_QueryAdaptiveGrid(benchmark::State& state) {
  const auto& ag = SharedSynopsis<AdaptiveGrid>();
  Rng rng(10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ag.Answer(RandomQuery(rng, SharedDataset().domain())));
  }
}
BENCHMARK(BM_QueryAdaptiveGrid);

// Batched answering through the query engine: the serving path. Compare
// items/s here against the per-query BM_Query* loops above.
template <typename SynopsisT>
void BM_BatchedQueries(benchmark::State& state) {
  const auto& synopsis = SharedSynopsis<SynopsisT>();
  Rng rng(13);
  std::vector<Rect> queries(1 << 16);
  for (Rect& q : queries) q = RandomQuery(rng, SharedDataset().domain());
  std::vector<double> out(queries.size());
  QueryEngine engine;
  for (auto _ : state) {
    engine.AnswerAll(synopsis, queries, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(queries.size()));
}
BENCHMARK_TEMPLATE(BM_BatchedQueries, UniformGrid)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_BatchedQueries, AdaptiveGrid)
    ->Unit(benchmark::kMillisecond);

void BM_QueryKdHybrid(benchmark::State& state) {
  static const KdTree* tree = [] {
    Rng rng(11);
    return new KdTree(SharedDataset(), 1.0, rng, KdHybridOptions());
  }();
  Rng rng(12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tree->Answer(RandomQuery(rng, SharedDataset().domain())));
  }
}
BENCHMARK(BM_QueryKdHybrid);

}  // namespace
}  // namespace dpgrid

BENCHMARK_MAIN();
