// Over-the-wire serving throughput of the TCP query server vs the same
// engine called in-process, on a loopback connection.
//
// One client thread streams QUERY_BATCH frames of varying batch sizes at
// a single-threaded server (per the repo perf notes: the container has
// one CPU, so client and server handler time-share it — the numbers are
// a conservative floor for real two-machine serving). Every wire pass
// runs twice: against the default epoll event-loop engine and against the
// legacy thread-per-connection engine, both speaking DPGW v2 (CRC32C
// frame checksums). Reported per batch size and server mode:
//
//   wire_qps          queries/s through connect->frame->engine->frame
//   frames_per_sec    request/response round trips per second
//   wire_overhead     1 - wire_qps / inprocess_qps
//   p50/p95/p99/max   per-frame latency from the server's own METRICS
//                     histograms (delta across the pass; max is since the
//                     server started, as histograms are monotone counters)
//
// A pipelined pass (QueryBatchPipelined, 8 frames in flight) shows what
// the event loop buys once the client stops waiting a full round trip
// per frame. A checksum micro-bench compares the v1 FNV-1a fold against
// CRC32C (software slice-by-8 and the SSE4.2 3-lane kernel) in GB/s.
//
// Answers that crossed the wire are checked bitwise against the
// in-process engine on the same snapshot — the serving layer must never
// perturb an answer.
//
// Results go to stdout and BENCH_server.json (DPGRID_BENCH_OUT
// overrides). Env knobs: DPGRID_SRV_POINTS (default 200000),
// DPGRID_SRV_QUERIES (default 262144 per batch-size pass),
// DPGRID_SRV_REPS (default 3), DPGRID_SEED.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include <unistd.h>

#include "bench/bench_util.h"
#include "catalog/synopsis_catalog.h"
#include "common/crc32c.h"
#include "common/random.h"
#include "data/generators.h"
#include "grid/uniform_grid.h"
#include "obs/metrics.h"
#include "query/query_engine.h"
#include "query/workload.h"
#include "server/client.h"
#include "server/server.h"
#include "server/socket_io.h"
#include "server/wire.h"
#include "store/snapshot.h"
#include "store/snapshot_store.h"

namespace dpgrid {
namespace {

using bench::EnvInt;
using bench::NowSeconds;

struct PassResult {
  const char* mode = "";
  size_t batch_size = 0;
  double wire_qps = 0.0;
  double frames_per_sec = 0.0;
  double overhead = 0.0;
  bool bitwise_equal = false;
  // Server-side per-frame latency over this pass, from the METRICS op.
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  uint64_t max_us = 0;
};

// Latency histogram of the QUERY_BATCH op inside a METRICS snapshot
// (empty histogram when the op has not been exercised yet).
obs::HistogramSnapshot QueryBatchLatency(const obs::MetricsSnapshot& snap) {
  for (const obs::OpMetricsSnapshot& op : snap.ops) {
    if (op.op == static_cast<uint32_t>(WireOp::kQueryBatch)) return op.latency;
  }
  return obs::HistogramSnapshot{};
}

const char* ModeName(ServeMode mode) {
  return mode == ServeMode::kEventLoop ? "event-loop" : "thread-per-conn";
}

// Best-of-reps throughput of `digest` over `buf`, in GB/s. The digest
// result is accumulated into a sink so the call cannot be optimized away.
template <typename Fn>
double ChecksumGbps(const Fn& digest, std::string_view buf, int reps,
                    uint64_t* sink) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const double t0 = NowSeconds();
    *sink += digest(buf);
    best = std::min(best, NowSeconds() - t0);
  }
  return static_cast<double>(buf.size()) / best / 1e9;
}

}  // namespace
}  // namespace dpgrid

int main() {
  using namespace dpgrid;

  const auto num_points =
      static_cast<int64_t>(EnvInt("DPGRID_SRV_POINTS", 200000));
  const auto num_queries =
      static_cast<size_t>(EnvInt("DPGRID_SRV_QUERIES", 262144));
  const int reps = static_cast<int>(EnvInt("DPGRID_SRV_REPS", 3));
  const auto seed = static_cast<uint64_t>(EnvInt("DPGRID_SEED", 20130408));
  const char* out_path = std::getenv("DPGRID_BENCH_OUT");
  if (out_path == nullptr || *out_path == '\0') out_path = "BENCH_server.json";

  std::printf("=== bench_server_throughput ===\n");
  std::printf("points=%lld queries=%zu reps=%d seed=%llu (loopback, "
              "1-thread engine, DPGW v%u)\n",
              static_cast<long long>(num_points), num_queries, reps,
              static_cast<unsigned long long>(seed), kWireProtocolVersion);

  // --- checksum micro-bench -------------------------------------------------
  // The v2 motivation in numbers: FNV-1a's serial multiply chain vs
  // CRC32C. 32 MiB of pseudo-random bytes, best-of-reps each.
  std::vector<char> chk_buf(32u << 20);
  {
    uint64_t x = seed | 1;
    for (size_t i = 0; i < chk_buf.size(); i += 8) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      std::memcpy(chk_buf.data() + i, &x, 8);
    }
  }
  const std::string_view chk(chk_buf.data(), chk_buf.size());
  uint64_t chk_sink = 0;
  const int chk_reps = std::max(3, reps);
  const double fnv_gbps = ChecksumGbps(
      [](std::string_view b) { return SnapshotChecksum(b); }, chk, chk_reps,
      &chk_sink);
  const double crc_sw_gbps = ChecksumGbps(
      [](std::string_view b) { return uint64_t{Crc32cSoftware(b)}; }, chk,
      chk_reps, &chk_sink);
  const bool crc_hw = Crc32cHardwareAvailable();
  const double crc_hw_gbps =
      crc_hw ? ChecksumGbps(
                   [](std::string_view b) { return uint64_t{Crc32cHardware(b)}; },
                   chk, chk_reps, &chk_sink)
             : 0.0;
  const bool digests_match = Crc32cSoftware(chk) == Crc32cHardware(chk);
  const double crc_best_gbps = crc_hw ? crc_hw_gbps : crc_sw_gbps;
  std::printf("\nchecksum (32 MiB): fnv1a=%.2f GB/s  crc32c_sw=%.2f GB/s  "
              "crc32c_hw=%s  speedup=%.1fx  sw==hw=%s\n",
              fnv_gbps, crc_sw_gbps,
              crc_hw ? (std::to_string(crc_hw_gbps).substr(0, 5) + " GB/s").c_str()
                     : "n/a",
              crc_best_gbps / fnv_gbps, digests_match ? "yes" : "NO");

  // Build and publish one UG snapshot into a scratch store. The per-PID
  // RAII dir means concurrent runs don't collide and every early-exit
  // path below still cleans up.
  Rng data_rng(seed);
  const Dataset data = MakeCheckinLike(num_points, data_rng);
  Rng build_rng(seed + 2);
  UniformGrid ug(data, 1.0, build_rng);
  const bench::ScratchDir scratch("dpgrid_bench_server");
  const std::string& dir = scratch.path();
  SnapshotStore store(dir);
  std::string error;
  if (store.Publish("bench", ug, SnapshotMeta{1.0, "bench"}, &error) == 0) {
    std::fprintf(stderr, "publish failed: %s\n", error.c_str());
    return 1;
  }
  SynopsisCatalog catalog(&store);
  if (catalog.LoadAll(&error) != 1) {
    std::fprintf(stderr, "catalog load failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("uniform grid: m=%d\n", ug.grid_size());

  // Paper-style workload, flattened and padded.
  Rng workload_rng(seed + 1);
  const int per_size = static_cast<int>((num_queries + 5) / 6);
  Workload workload =
      GenerateWorkload(data.domain(), data.domain().Width() / 2,
                       data.domain().Height() / 2, 6, per_size, workload_rng);
  std::vector<Rect> queries;
  for (const auto& group : workload.queries) {
    queries.insert(queries.end(), group.begin(), group.end());
  }
  queries.resize(num_queries);

  const QueryEngine engine(QueryEngineOptions{.num_threads = 1});

  // --- in-process baseline --------------------------------------------------
  const auto snap = catalog.Slot2D("bench")->Acquire();
  std::vector<double> local(num_queries);
  double t_local = 1e300;
  for (int r = 0; r < reps; ++r) {
    const double t0 = NowSeconds();
    engine.AnswerAll(*snap->synopsis, queries, local);
    t_local = std::min(t_local, NowSeconds() - t0);
  }
  const double inprocess_qps = static_cast<double>(num_queries) / t_local;
  std::printf("\nin-process engine: %.0f QPS\n", inprocess_qps);

  // --- server + client, both engines ---------------------------------------
  const size_t kBatchSizes[] = {256, 4096, 65536};
  const ServeMode kModes[] = {ServeMode::kEventLoop,
                              ServeMode::kThreadPerConnection};
  std::vector<PassResult> results;
  bool all_equal = digests_match;
  double pipelined_qps = 0.0;
  double pipelined_fps = 0.0;
  bool pipelined_equal = false;

  for (const ServeMode mode : kModes) {
    QueryServerOptions server_options;
    server_options.mode = mode;
    QueryServer server(&catalog, &engine, server_options);
    if (!server.Start(&error)) {
      std::fprintf(stderr, "server start failed: %s\n", error.c_str());
      return 1;
    }
    QueryClient client;
    if (!client.Connect("127.0.0.1", server.port(), &error)) {
      std::fprintf(stderr, "connect failed: %s\n", error.c_str());
      return 1;
    }

    std::printf("\n--- %s ---\n%-12s %14s %14s %12s %10s %8s %8s %8s %8s\n",
                ModeName(mode), "batch_size", "wire QPS", "frames/s",
                "overhead", "bitwise", "p50us", "p95us", "p99us", "maxus");
    for (const size_t batch : kBatchSizes) {
      obs::MetricsSnapshot before;
      if (!client.Metrics(nullptr, &before, &error)) {
        std::fprintf(stderr, "metrics failed: %s\n", error.c_str());
        return 1;
      }
      std::vector<double> wire(num_queries);
      std::vector<double> answers;
      double best = 1e300;
      for (int r = 0; r < reps; ++r) {
        const double t0 = NowSeconds();
        for (size_t off = 0; off < num_queries; off += batch) {
          const size_t n = std::min(batch, num_queries - off);
          uint64_t version = 0;
          if (!client.QueryBatch(
                  "bench", std::span<const Rect>(queries.data() + off, n),
                  &answers, &version, nullptr, &error)) {
            std::fprintf(stderr, "query failed: %s\n", error.c_str());
            return 1;
          }
          std::copy(answers.begin(), answers.end(), wire.begin() + off);
        }
        best = std::min(best, NowSeconds() - t0);
      }
      obs::MetricsSnapshot after;
      if (!client.Metrics(nullptr, &after, &error)) {
        std::fprintf(stderr, "metrics failed: %s\n", error.c_str());
        return 1;
      }
      const obs::HistogramSnapshot pass_latency =
          QueryBatchLatency(after).Delta(QueryBatchLatency(before));
      PassResult res;
      res.mode = ModeName(mode);
      res.batch_size = batch;
      res.wire_qps = static_cast<double>(num_queries) / best;
      res.frames_per_sec =
          static_cast<double>((num_queries + batch - 1) / batch) / best;
      res.overhead = 1.0 - res.wire_qps / inprocess_qps;
      res.bitwise_equal = wire == local;
      res.p50_us = pass_latency.P50();
      res.p95_us = pass_latency.P95();
      res.p99_us = pass_latency.P99();
      res.max_us = pass_latency.max_us;
      all_equal = all_equal && res.bitwise_equal;
      results.push_back(res);
      std::printf("%-12zu %14.0f %14.1f %11.1f%% %10s %8.0f %8.0f %8.0f %8llu\n",
                  batch, res.wire_qps, res.frames_per_sec,
                  100.0 * res.overhead, res.bitwise_equal ? "yes" : "NO",
                  res.p50_us, res.p95_us, res.p99_us,
                  static_cast<unsigned long long>(res.max_us));
    }

    if (mode == ServeMode::kEventLoop) {
      // Pipelined pass: same 4096-query frames, but up to 8 in flight on
      // the connection instead of one blocking round trip each.
      std::vector<double> wire;
      double best = 1e300;
      for (int r = 0; r < reps; ++r) {
        uint64_t version = 0;
        WireStatus status = WireStatus::kOk;
        const double t0 = NowSeconds();
        if (!client.QueryBatchPipelined("bench", queries, 4096, 8, &wire,
                                        &version, &status, &error)) {
          std::fprintf(stderr, "pipelined query failed: %s\n", error.c_str());
          return 1;
        }
        best = std::min(best, NowSeconds() - t0);
      }
      pipelined_qps = static_cast<double>(num_queries) / best;
      pipelined_fps = static_cast<double>((num_queries + 4095) / 4096) / best;
      pipelined_equal = wire == local;
      all_equal = all_equal && pipelined_equal;
      std::printf("%-12s %14.0f %14.1f %11.1f%% %10s\n", "4096 (pipe8)",
                  pipelined_qps, pipelined_fps,
                  100.0 * (1.0 - pipelined_qps / inprocess_qps),
                  pipelined_equal ? "yes" : "NO");
    }

    const WireStats stats = server.StatsSnapshot();
    std::printf("server counters: %llu frames, %llu queries, %llu errors\n",
                static_cast<unsigned long long>(stats.frames_received),
                static_cast<unsigned long long>(stats.queries_answered),
                static_cast<unsigned long long>(stats.errors_returned));
    client.Close();
    server.Shutdown();
  }

  // --- shed latency ---------------------------------------------------------
  // How quickly an over-capacity connection gets its kOverloaded verdict:
  // the time an upstream load balancer is stuck holding a doomed
  // connection before it can fail over. A one-slot server is pinned by a
  // blocker client; each trial connects, reads the unsolicited verdict
  // frame, and closes. Runs on the default (event-loop) engine.
  const int shed_trials =
      static_cast<int>(EnvInt("DPGRID_SRV_SHED_TRIALS", 200));
  QueryServerOptions shed_options;
  shed_options.max_connections = 1;
  QueryServer shed_server(&catalog, &engine, shed_options);
  if (!shed_server.Start(&error)) {
    std::fprintf(stderr, "shed server start failed: %s\n", error.c_str());
    return 1;
  }
  QueryClient blocker;
  WireStats pin_stats;
  if (!blocker.Connect("127.0.0.1", shed_server.port(), &error) ||
      !blocker.Stats(&pin_stats, &error)) {  // round trip pins the one slot
    std::fprintf(stderr, "shed blocker failed: %s\n", error.c_str());
    return 1;
  }
  std::vector<double> shed_us;
  shed_us.reserve(static_cast<size_t>(shed_trials));
  bool all_verdicts_decoded = true;
  for (int i = 0; i < shed_trials; ++i) {
    const double t0 = NowSeconds();
    const int fd = net::ConnectTcp("127.0.0.1", shed_server.port(), &error);
    if (fd < 0) {
      std::fprintf(stderr, "shed connect failed: %s\n", error.c_str());
      return 1;
    }
    char header[kWireHeaderSize];
    WireOp op = WireOp::kHealth;
    uint64_t id = 0;
    uint64_t body_size = 0;
    uint64_t checksum = 0;
    std::string body;
    bool decoded =
        net::ReadFullDeadline(fd, header, sizeof(header),
                              net::Deadline::AfterMs(5000)) ==
            net::IoResult::kOk &&
        DecodeFrameHeader(std::string_view(header, sizeof(header)), &op, &id,
                          &body_size, &checksum, &error);
    if (decoded) {
      body.resize(static_cast<size_t>(body_size));
      HealthResponse verdict;
      decoded = net::ReadFullDeadline(fd, body.data(), body.size(),
                                      net::Deadline::AfterMs(5000)) ==
                    net::IoResult::kOk &&
                DecodeHealthResponse(body, &verdict, &error) &&
                verdict.status == WireStatus::kOverloaded;
    }
    shed_us.push_back(1e6 * (NowSeconds() - t0));
    ::close(fd);
    all_verdicts_decoded = all_verdicts_decoded && decoded;
  }
  blocker.Close();
  shed_server.Shutdown();
  std::sort(shed_us.begin(), shed_us.end());
  const double shed_p50 = shed_us[shed_us.size() / 2];
  const double shed_max = shed_us.back();
  std::printf("\nshed latency (connect -> kOverloaded verdict, "
              "%d trials): p50=%.0fus max=%.0fus verdicts=%s\n",
              shed_trials, shed_p50, shed_max,
              all_verdicts_decoded ? "ok" : "BROKEN");
  all_equal = all_equal && all_verdicts_decoded;

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"bench_server_throughput\",\n"
               "  \"config\": {\n"
               "    \"points\": %lld,\n"
               "    \"queries\": %zu,\n"
               "    \"reps\": %d,\n"
               "    \"seed\": %llu,\n"
               "    \"grid_size\": %d,\n"
               "    \"transport\": \"tcp-loopback\",\n"
               "    \"protocol_version\": %u,\n"
               "    \"engine_threads\": 1\n"
               "  },\n"
               "  \"checksum\": {\n"
               "    \"buffer_mib\": 32,\n"
               "    \"fnv1a_gbps\": %.2f,\n"
               "    \"crc32c_sw_gbps\": %.2f,\n"
               "    \"crc32c_hw_available\": %s,\n"
               "    \"crc32c_hw_gbps\": %.2f,\n"
               "    \"crc32c_vs_fnv1a\": %.1f,\n"
               "    \"sw_hw_digests_match\": %s\n"
               "  },\n"
               "  \"inprocess_qps\": %.0f,\n"
               "  \"wire\": [\n",
               static_cast<long long>(num_points), num_queries, reps,
               static_cast<unsigned long long>(seed), ug.grid_size(),
               kWireProtocolVersion, fnv_gbps, crc_sw_gbps,
               crc_hw ? "true" : "false", crc_hw_gbps,
               crc_best_gbps / fnv_gbps, digests_match ? "true" : "false",
               inprocess_qps);
  for (size_t i = 0; i < results.size(); ++i) {
    const PassResult& r = results[i];
    std::fprintf(f,
                 "    {\"server_mode\": \"%s\", \"batch_size\": %zu, "
                 "\"wire_qps\": %.0f, "
                 "\"frames_per_sec\": %.1f, \"overhead_vs_inprocess\": %.4f, "
                 "\"latency_p50_us\": %.1f, \"latency_p95_us\": %.1f, "
                 "\"latency_p99_us\": %.1f, \"latency_max_us\": %llu, "
                 "\"bitwise_equal_inprocess\": %s}%s\n",
                 r.mode, r.batch_size, r.wire_qps, r.frames_per_sec,
                 r.overhead, r.p50_us, r.p95_us, r.p99_us,
                 static_cast<unsigned long long>(r.max_us),
                 r.bitwise_equal ? "true" : "false",
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n"
               "  \"pipelined\": {\n"
               "    \"server_mode\": \"event-loop\",\n"
               "    \"batch_size\": 4096,\n"
               "    \"window\": 8,\n"
               "    \"wire_qps\": %.0f,\n"
               "    \"frames_per_sec\": %.1f,\n"
               "    \"bitwise_equal_inprocess\": %s\n"
               "  },\n"
               "  \"resilience\": {\n"
               "    \"shed_trials\": %d,\n"
               "    \"shed_max_connections\": 1,\n"
               "    \"shed_latency_p50_us\": %.1f,\n"
               "    \"shed_latency_max_us\": %.1f,\n"
               "    \"verdicts_decoded\": %s\n"
               "  }\n}\n",
               pipelined_qps, pipelined_fps,
               pipelined_equal ? "true" : "false", shed_trials, shed_p50,
               shed_max, all_verdicts_decoded ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", out_path);

  return all_equal ? 0 : 1;
}
