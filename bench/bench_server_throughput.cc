// Over-the-wire serving throughput of the TCP query server vs the same
// engine called in-process, on a loopback connection.
//
// One client thread streams QUERY_BATCH frames of varying batch sizes at
// a single-threaded server (per the repo perf notes: the container has
// one CPU, so client and server handler time-share it — the numbers are
// a conservative floor for real two-machine serving). Reported per batch
// size:
//
//   wire_qps          queries/s through connect->frame->engine->frame
//   frames_per_sec    request/response round trips per second
//   wire_overhead     1 - wire_qps / inprocess_qps
//
// Answers that crossed the wire are checked bitwise against the
// in-process engine on the same snapshot — the serving layer must never
// perturb an answer.
//
// Results go to stdout and BENCH_server.json (DPGRID_BENCH_OUT
// overrides). Env knobs: DPGRID_SRV_POINTS (default 200000),
// DPGRID_SRV_QUERIES (default 262144 per batch-size pass),
// DPGRID_SRV_REPS (default 3), DPGRID_SEED.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include <unistd.h>

#include "bench/bench_util.h"
#include "catalog/synopsis_catalog.h"
#include "common/random.h"
#include "data/generators.h"
#include "grid/uniform_grid.h"
#include "query/query_engine.h"
#include "query/workload.h"
#include "server/client.h"
#include "server/server.h"
#include "server/socket_io.h"
#include "server/wire.h"
#include "store/snapshot_store.h"

namespace dpgrid {
namespace {

using bench::EnvInt;
using bench::NowSeconds;

struct PassResult {
  size_t batch_size = 0;
  double wire_qps = 0.0;
  double frames_per_sec = 0.0;
  double overhead = 0.0;
  bool bitwise_equal = false;
};

}  // namespace
}  // namespace dpgrid

int main() {
  using namespace dpgrid;

  const auto num_points =
      static_cast<int64_t>(EnvInt("DPGRID_SRV_POINTS", 200000));
  const auto num_queries =
      static_cast<size_t>(EnvInt("DPGRID_SRV_QUERIES", 262144));
  const int reps = static_cast<int>(EnvInt("DPGRID_SRV_REPS", 3));
  const auto seed = static_cast<uint64_t>(EnvInt("DPGRID_SEED", 20130408));
  const char* out_path = std::getenv("DPGRID_BENCH_OUT");
  if (out_path == nullptr || *out_path == '\0') out_path = "BENCH_server.json";

  std::printf("=== bench_server_throughput ===\n");
  std::printf("points=%lld queries=%zu reps=%d seed=%llu (loopback, "
              "1-thread engine)\n",
              static_cast<long long>(num_points), num_queries, reps,
              static_cast<unsigned long long>(seed));

  // Build and publish one UG snapshot into a scratch store. The per-PID
  // RAII dir means concurrent runs don't collide and every early-exit
  // path below still cleans up.
  Rng data_rng(seed);
  const Dataset data = MakeCheckinLike(num_points, data_rng);
  Rng build_rng(seed + 2);
  UniformGrid ug(data, 1.0, build_rng);
  const bench::ScratchDir scratch("dpgrid_bench_server");
  const std::string& dir = scratch.path();
  SnapshotStore store(dir);
  std::string error;
  if (store.Publish("bench", ug, SnapshotMeta{1.0, "bench"}, &error) == 0) {
    std::fprintf(stderr, "publish failed: %s\n", error.c_str());
    return 1;
  }
  SynopsisCatalog catalog(&store);
  if (catalog.LoadAll(&error) != 1) {
    std::fprintf(stderr, "catalog load failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("uniform grid: m=%d\n", ug.grid_size());

  // Paper-style workload, flattened and padded.
  Rng workload_rng(seed + 1);
  const int per_size = static_cast<int>((num_queries + 5) / 6);
  Workload workload =
      GenerateWorkload(data.domain(), data.domain().Width() / 2,
                       data.domain().Height() / 2, 6, per_size, workload_rng);
  std::vector<Rect> queries;
  for (const auto& group : workload.queries) {
    queries.insert(queries.end(), group.begin(), group.end());
  }
  queries.resize(num_queries);

  const QueryEngine engine(QueryEngineOptions{.num_threads = 1});

  // --- in-process baseline --------------------------------------------------
  const auto snap = catalog.Slot2D("bench")->Acquire();
  std::vector<double> local(num_queries);
  double t_local = 1e300;
  for (int r = 0; r < reps; ++r) {
    const double t0 = NowSeconds();
    engine.AnswerAll(*snap->synopsis, queries, local);
    t_local = std::min(t_local, NowSeconds() - t0);
  }
  const double inprocess_qps = static_cast<double>(num_queries) / t_local;
  std::printf("\nin-process engine: %.0f QPS\n", inprocess_qps);

  // --- server + client ------------------------------------------------------
  QueryServer server(&catalog, &engine, QueryServerOptions{});
  if (!server.Start(&error)) {
    std::fprintf(stderr, "server start failed: %s\n", error.c_str());
    return 1;
  }
  QueryClient client;
  if (!client.Connect("127.0.0.1", server.port(), &error)) {
    std::fprintf(stderr, "connect failed: %s\n", error.c_str());
    return 1;
  }

  const size_t kBatchSizes[] = {256, 4096, 65536};
  std::vector<PassResult> results;
  std::printf("\n%-12s %14s %14s %12s %10s\n", "batch_size", "wire QPS",
              "frames/s", "overhead", "bitwise");
  bool all_equal = true;
  for (const size_t batch : kBatchSizes) {
    std::vector<double> wire(num_queries);
    std::vector<double> answers;
    double best = 1e300;
    for (int r = 0; r < reps; ++r) {
      const double t0 = NowSeconds();
      for (size_t off = 0; off < num_queries; off += batch) {
        const size_t n = std::min(batch, num_queries - off);
        uint64_t version = 0;
        if (!client.QueryBatch(
                "bench", std::span<const Rect>(queries.data() + off, n),
                &answers, &version, nullptr, &error)) {
          std::fprintf(stderr, "query failed: %s\n", error.c_str());
          return 1;
        }
        std::copy(answers.begin(), answers.end(), wire.begin() + off);
      }
      best = std::min(best, NowSeconds() - t0);
    }
    PassResult res;
    res.batch_size = batch;
    res.wire_qps = static_cast<double>(num_queries) / best;
    res.frames_per_sec =
        static_cast<double>((num_queries + batch - 1) / batch) / best;
    res.overhead = 1.0 - res.wire_qps / inprocess_qps;
    res.bitwise_equal = wire == local;
    all_equal = all_equal && res.bitwise_equal;
    results.push_back(res);
    std::printf("%-12zu %14.0f %14.1f %11.1f%% %10s\n", batch, res.wire_qps,
                res.frames_per_sec, 100.0 * res.overhead,
                res.bitwise_equal ? "yes" : "NO");
  }

  const WireStats stats = server.StatsSnapshot();
  std::printf("\nserver counters: %llu frames, %llu queries, %llu errors\n",
              static_cast<unsigned long long>(stats.frames_received),
              static_cast<unsigned long long>(stats.queries_answered),
              static_cast<unsigned long long>(stats.errors_returned));
  client.Close();
  server.Shutdown();

  // --- shed latency ---------------------------------------------------------
  // How quickly an over-capacity connection gets its kOverloaded verdict:
  // the time an upstream load balancer is stuck holding a doomed
  // connection before it can fail over. A one-slot server is pinned by a
  // blocker client; each trial connects, reads the unsolicited verdict
  // frame, and closes.
  const int shed_trials =
      static_cast<int>(EnvInt("DPGRID_SRV_SHED_TRIALS", 200));
  QueryServerOptions shed_options;
  shed_options.max_connections = 1;
  QueryServer shed_server(&catalog, &engine, shed_options);
  if (!shed_server.Start(&error)) {
    std::fprintf(stderr, "shed server start failed: %s\n", error.c_str());
    return 1;
  }
  QueryClient blocker;
  WireStats pin_stats;
  if (!blocker.Connect("127.0.0.1", shed_server.port(), &error) ||
      !blocker.Stats(&pin_stats, &error)) {  // round trip pins the one slot
    std::fprintf(stderr, "shed blocker failed: %s\n", error.c_str());
    return 1;
  }
  std::vector<double> shed_us;
  shed_us.reserve(static_cast<size_t>(shed_trials));
  bool all_verdicts_decoded = true;
  for (int i = 0; i < shed_trials; ++i) {
    const double t0 = NowSeconds();
    const int fd = net::ConnectTcp("127.0.0.1", shed_server.port(), &error);
    if (fd < 0) {
      std::fprintf(stderr, "shed connect failed: %s\n", error.c_str());
      return 1;
    }
    char header[kWireHeaderSize];
    WireOp op = WireOp::kHealth;
    uint64_t id = 0;
    uint64_t body_size = 0;
    uint64_t checksum = 0;
    std::string body;
    bool decoded =
        net::ReadFullDeadline(fd, header, sizeof(header),
                              net::Deadline::AfterMs(5000)) ==
            net::IoResult::kOk &&
        DecodeFrameHeader(std::string_view(header, sizeof(header)), &op, &id,
                          &body_size, &checksum, &error);
    if (decoded) {
      body.resize(static_cast<size_t>(body_size));
      HealthResponse verdict;
      decoded = net::ReadFullDeadline(fd, body.data(), body.size(),
                                      net::Deadline::AfterMs(5000)) ==
                    net::IoResult::kOk &&
                DecodeHealthResponse(body, &verdict, &error) &&
                verdict.status == WireStatus::kOverloaded;
    }
    shed_us.push_back(1e6 * (NowSeconds() - t0));
    ::close(fd);
    all_verdicts_decoded = all_verdicts_decoded && decoded;
  }
  blocker.Close();
  shed_server.Shutdown();
  std::sort(shed_us.begin(), shed_us.end());
  const double shed_p50 = shed_us[shed_us.size() / 2];
  const double shed_max = shed_us.back();
  std::printf("\nshed latency (connect -> kOverloaded verdict, "
              "%d trials): p50=%.0fus max=%.0fus verdicts=%s\n",
              shed_trials, shed_p50, shed_max,
              all_verdicts_decoded ? "ok" : "BROKEN");
  all_equal = all_equal && all_verdicts_decoded;

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"bench_server_throughput\",\n"
               "  \"config\": {\n"
               "    \"points\": %lld,\n"
               "    \"queries\": %zu,\n"
               "    \"reps\": %d,\n"
               "    \"seed\": %llu,\n"
               "    \"grid_size\": %d,\n"
               "    \"transport\": \"tcp-loopback\",\n"
               "    \"engine_threads\": 1\n"
               "  },\n"
               "  \"inprocess_qps\": %.0f,\n"
               "  \"wire\": [\n",
               static_cast<long long>(num_points), num_queries, reps,
               static_cast<unsigned long long>(seed), ug.grid_size(),
               inprocess_qps);
  for (size_t i = 0; i < results.size(); ++i) {
    const PassResult& r = results[i];
    std::fprintf(f,
                 "    {\"batch_size\": %zu, \"wire_qps\": %.0f, "
                 "\"frames_per_sec\": %.1f, \"overhead_vs_inprocess\": %.4f, "
                 "\"bitwise_equal_inprocess\": %s}%s\n",
                 r.batch_size, r.wire_qps, r.frames_per_sec, r.overhead,
                 r.bitwise_equal ? "true" : "false",
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n"
               "  \"resilience\": {\n"
               "    \"shed_trials\": %d,\n"
               "    \"shed_max_connections\": 1,\n"
               "    \"shed_latency_p50_us\": %.1f,\n"
               "    \"shed_latency_max_us\": %.1f,\n"
               "    \"verdicts_decoded\": %s\n"
               "  }\n}\n",
               shed_trials, shed_p50, shed_max,
               all_verdicts_decoded ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", out_path);

  return all_equal ? 0 : 1;
}
