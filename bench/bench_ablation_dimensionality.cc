// Ablation backing the paper's §IV-C dimensionality analysis: a binary
// hierarchy sharply reduces range-query noise error over flat bins in 1-D,
// but the benefit mostly evaporates in 2-D, because a 2-D query's border —
// which must be answered by leaf cells — is a much larger fraction of the
// query than in 1-D.
//
// We measure pure noise error (empty data) so the uniformity error is zero
// and the hierarchy effect is isolated, and also print the paper's border
// fraction illustration (M = 10,000 cells, b = 4: 4*sqrt(b)/sqrt(M) = 0.08
// in 2-D versus 2*b/M = 0.0008 in 1-D).

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "geo/dataset.h"
#include "hier/hierarchy1d.h"
#include "hier/hierarchy_grid.h"
#include "metrics/error.h"
#include "metrics/table.h"
#include "nd/dataset_nd.h"
#include "nd/hierarchy_nd.h"

namespace dpgrid {
namespace bench {
namespace {

// Mean absolute noise error of 1-D range queries over flat vs hierarchical
// noisy histograms (zero data).
void Run1D(int trials, Rng& rng, double* flat_out, double* hier_out) {
  const size_t n = 4096;
  const std::vector<double> zeros(n, 0.0);
  double flat_err = 0.0;
  double hier_err = 0.0;
  int samples = 0;
  for (int t = 0; t < trials; ++t) {
    Hierarchy1D flat(zeros, 1.0, 2, 1, rng);
    // b=4, 7 levels: the same level count, budget split and leaf count
    // (4096) as the 2-D hierarchy below, isolating dimensionality.
    Hierarchy1D hier(zeros, 1.0, 4, 7, rng);
    for (int q = 0; q < 50; ++q) {
      size_t len = static_cast<size_t>(rng.UniformInt(64, 3500));
      size_t begin =
          static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(n - len)));
      flat_err += std::abs(flat.AnswerRange(begin, begin + len));
      hier_err += std::abs(hier.AnswerRange(begin, begin + len));
      ++samples;
    }
  }
  *flat_out = flat_err / samples;
  *hier_out = hier_err / samples;
}

// Same comparison in 2-D with the same number of leaf cells (64x64 = 4096).
void Run2D(int trials, Rng& rng, double* flat_out, double* hier_out) {
  const Rect domain{0, 0, 64, 64};
  const Dataset empty(domain);
  double flat_err = 0.0;
  double hier_err = 0.0;
  int samples = 0;
  for (int t = 0; t < trials; ++t) {
    HierarchyGridOptions flat_opts;
    flat_opts.leaf_size = 64;
    flat_opts.depth = 1;
    HierarchyGrid flat(empty, 1.0, rng, flat_opts);
    HierarchyGridOptions hier_opts;
    hier_opts.leaf_size = 64;
    hier_opts.branching = 2;
    hier_opts.depth = 7;  // full binary-per-axis hierarchy
    HierarchyGrid hier(empty, 1.0, rng, hier_opts);
    for (int q = 0; q < 50; ++q) {
      double w = rng.Uniform(8, 58);
      double h = rng.Uniform(8, 58);
      double xlo = rng.Uniform(0, 64 - w);
      double ylo = rng.Uniform(0, 64 - h);
      Rect query{xlo, ylo, xlo + w, ylo + h};
      flat_err += std::abs(flat.Answer(query));
      hier_err += std::abs(hier.Answer(query));
      ++samples;
    }
  }
  *flat_out = flat_err / samples;
  *hier_out = hier_err / samples;
}

// 3-D with the same leaf count (16^3 = 4096) and a comparable level count.
// The paper predicts the remaining hierarchy benefit disappears at d >= 3.
void Run3D(int trials, Rng& rng, double* flat_out, double* hier_out) {
  const BoxNd domain = BoxNd::Cube(3, 0, 16);
  const DatasetNd empty(domain);
  double flat_err = 0.0;
  double hier_err = 0.0;
  int samples = 0;
  for (int t = 0; t < trials; ++t) {
    HierarchyNdOptions flat_opts;
    flat_opts.leaf_size = 16;
    flat_opts.depth = 1;
    HierarchyNd flat(empty, 1.0, rng, flat_opts);
    HierarchyNdOptions hier_opts;
    hier_opts.leaf_size = 16;
    hier_opts.branching = 2;
    hier_opts.depth = 5;
    HierarchyNd hier(empty, 1.0, rng, hier_opts);
    for (int q = 0; q < 50; ++q) {
      std::vector<double> lo(3);
      std::vector<double> hi(3);
      for (size_t a = 0; a < 3; ++a) {
        double extent = rng.Uniform(4, 14);
        lo[a] = rng.Uniform(0, 16 - extent);
        hi[a] = lo[a] + extent;
      }
      BoxNd query(lo, hi);
      flat_err += std::abs(flat.Answer(query));
      hier_err += std::abs(hier.Answer(query));
      ++samples;
    }
  }
  *flat_out = flat_err / samples;
  *hier_out = hier_err / samples;
}

void Run() {
  BenchConfig config = BenchConfig::FromEnv();
  PrintConfig("bench_ablation_dimensionality (paper §IV-C)", config);

  Rng rng(config.seed);
  const int trials = std::max(10, config.trials * 5);
  double flat1 = 0.0;
  double hier1 = 0.0;
  double flat2 = 0.0;
  double hier2 = 0.0;
  double flat3 = 0.0;
  double hier3 = 0.0;
  Run1D(trials, rng, &flat1, &hier1);
  Run2D(trials, rng, &flat2, &hier2);
  Run3D(trials, rng, &flat3, &hier3);

  TablePrinter table({"setting", "flat noise err", "hierarchy noise err",
                      "flat/hier ratio"});
  table.AddRow({"1-D, 4096 bins, b=4, 7 levels", FormatDouble(flat1, 4),
                FormatDouble(hier1, 4), FormatDouble(flat1 / hier1, 3)});
  table.AddRow({"2-D, 64x64 cells, b=2x2, 7 levels", FormatDouble(flat2, 4),
                FormatDouble(hier2, 4), FormatDouble(flat2 / hier2, 3)});
  table.AddRow({"3-D, 16^3 cells, b=2x2x2, 5 levels", FormatDouble(flat3, 4),
                FormatDouble(hier3, 4), FormatDouble(flat3 / hier3, 3)});
  table.Print();
  std::printf(
      "\nExpected shape (paper §IV-C): the ratio is large in 1-D, near (or "
      "below) 1 in 2-D, and keeps falling in 3-D.\n");

  // The paper's closed-form border-fraction illustration.
  const double M = 10000.0;
  const double b = 4.0;
  std::printf(
      "Border fraction illustration (M=%.0f cells, b=%.0f): "
      "2-D: 4*sqrt(b)/sqrt(M) = %.4f, 1-D: 2*b/M = %.4f\n",
      M, b, 4.0 * std::sqrt(b) / std::sqrt(M), 2.0 * b / M);
}

}  // namespace
}  // namespace bench
}  // namespace dpgrid

int main() {
  dpgrid::bench::Run();
  return 0;
}
