// Query-serving throughput of the batched engine vs the seed's serial
// per-query loop, on a paper-scale uniform-grid workload.
//
// The seed answered every query through a virtual Synopsis::Answer call
// that converted domain to cell coordinates with four divisions and ran
// the generic per-axis segment decomposition (up to nine prefix block
// sums). The batched engine hoists virtual dispatch and per-query setup
// out of the loop and answers each query with the branch-light bilinear
// prefix kernel (index/frac_kernel.h), sharded across the thread pool.
// This bench reconstructs the seed path faithfully — same classes
// (GridCounts::ToCellCoords + PrefixSum2D::FractionalSum), same noisy
// counts, same virtual dispatch — and reports QPS for:
//
//   seed_serial       the seed's per-query loop
//   scalar_serial     per-query virtual Answer with the new kernel
//   batch_1thread     QueryEngine, single thread
//   batch_threads     QueryEngine, all hardware threads
//
// Batch answers are checked bitwise against scalar Answer; the absolute
// deviation from the seed algorithm (pure FP rounding) is reported.
//
// Results are appended-to-stdout and written as JSON (default
// BENCH_throughput.json, override with DPGRID_BENCH_OUT) so future PRs
// have a perf trajectory to compare against.
//
// Env knobs: DPGRID_TP_QUERIES (default 1000000), DPGRID_TP_POINTS
// (default 1000000), DPGRID_TP_REPS (default 3), DPGRID_SEED.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "data/generators.h"
#include "grid/adaptive_grid.h"
#include "grid/uniform_grid.h"
#include "index/prefix_sum2d.h"
#include "query/query_engine.h"
#include "query/workload.h"

namespace dpgrid {
namespace {

using bench::EnvInt;
using bench::NowSeconds;

// The seed's UniformGrid query path, reconstructed verbatim from the same
// public pieces the seed used: division-based GridCounts::ToCellCoords and
// the generic PrefixSum2D::FractionalSum, behind a virtual Answer.
class SeedStyleUniformGrid : public Synopsis {
 public:
  explicit SeedStyleUniformGrid(const UniformGrid& ug)
      : counts_(ug.noisy_counts()),
        prefix_(counts_.values(), counts_.nx(), counts_.ny()) {}

  double Answer(const Rect& query) const override {
    double x0 = 0.0;
    double x1 = 0.0;
    double y0 = 0.0;
    double y1 = 0.0;
    counts_.ToCellCoords(query, &x0, &x1, &y0, &y1);
    return prefix_.FractionalSum(x0, x1, y0, y1);
  }

  std::string Name() const override { return "seed-UG"; }
  std::vector<SynopsisCell> ExportCells() const override { return {}; }

 private:
  GridCounts counts_;
  PrefixSum2D prefix_;
};

// Best-of-reps wall time of `fn`, which must fill `out`.
template <typename Fn>
double TimeBest(int reps, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const double t0 = NowSeconds();
    fn();
    const double dt = NowSeconds() - t0;
    if (dt < best) best = dt;
  }
  return best;
}

std::vector<Rect> FlattenWorkload(const Workload& w) {
  std::vector<Rect> queries;
  for (const auto& group : w.queries) {
    queries.insert(queries.end(), group.begin(), group.end());
  }
  return queries;
}

struct ModeResult {
  std::string name;
  double qps = 0.0;
};

}  // namespace
}  // namespace dpgrid

int main() {
  using namespace dpgrid;

  const auto num_queries =
      static_cast<size_t>(EnvInt("DPGRID_TP_QUERIES", 1000000));
  const int64_t num_points = EnvInt("DPGRID_TP_POINTS", 1000000);
  const int reps = static_cast<int>(EnvInt("DPGRID_TP_REPS", 5));
  const auto seed = static_cast<uint64_t>(EnvInt("DPGRID_SEED", 20130408));
  const char* out_path = std::getenv("DPGRID_BENCH_OUT");
  if (out_path == nullptr || *out_path == '\0') {
    out_path = "BENCH_throughput.json";
  }

  std::printf("=== bench_query_throughput ===\n");
  std::printf("points=%lld queries=%zu reps=%d seed=%llu\n",
              static_cast<long long>(num_points), num_queries, reps,
              static_cast<unsigned long long>(seed));

  Rng data_rng(seed);
  Dataset data = MakeCheckinLike(num_points, data_rng);

  // Paper-style workload (6 size classes up to half the domain), flattened
  // and padded to the requested query count.
  Rng workload_rng(seed + 1);
  const int per_size = static_cast<int>((num_queries + 5) / 6);
  Workload workload =
      GenerateWorkload(data.domain(), data.domain().Width() / 2,
                       data.domain().Height() / 2, 6, per_size, workload_rng);
  std::vector<Rect> queries = FlattenWorkload(workload);
  queries.resize(num_queries);

  Rng build_rng(seed + 2);
  UniformGrid ug(data, 1.0, build_rng);
  SeedStyleUniformGrid seed_ug(ug);
  std::printf("uniform grid: m=%d (%zu cells)\n", ug.grid_size(),
              static_cast<size_t>(ug.grid_size()) * ug.grid_size());

  std::vector<double> seed_answers(num_queries);
  std::vector<double> scalar_answers(num_queries);
  std::vector<double> batch_answers(num_queries);

  // --- seed-style serial per-query loop ------------------------------------
  const Synopsis& seed_ref = seed_ug;
  const double t_seed = TimeBest(reps, [&] {
    for (size_t i = 0; i < num_queries; ++i) {
      seed_answers[i] = seed_ref.Answer(queries[i]);
    }
  });

  // --- new scalar path, still serial per-query virtual calls ---------------
  const Synopsis& new_ref = ug;
  const double t_scalar = TimeBest(reps, [&] {
    for (size_t i = 0; i < num_queries; ++i) {
      scalar_answers[i] = new_ref.Answer(queries[i]);
    }
  });

  // --- batched engine, one thread -------------------------------------------
  QueryEngineOptions serial_opts;
  serial_opts.num_threads = 1;
  QueryEngine engine_1t(serial_opts);
  const double t_batch1 = TimeBest(reps, [&] {
    engine_1t.AnswerAll(ug, queries, batch_answers);
  });

  // --- batched engine, all hardware threads ---------------------------------
  QueryEngine engine_mt;
  const int threads = engine_mt.num_threads();
  const double t_batchn = TimeBest(reps, [&] {
    engine_mt.AnswerAll(ug, queries, batch_answers);
  });

  // --- validation ------------------------------------------------------------
  size_t mismatches = 0;
  double max_diff_vs_seed = 0.0;
  for (size_t i = 0; i < num_queries; ++i) {
    if (batch_answers[i] != scalar_answers[i]) ++mismatches;
    const double diff = std::abs(batch_answers[i] - seed_answers[i]);
    if (diff > max_diff_vs_seed) max_diff_vs_seed = diff;
  }

  const double n = static_cast<double>(num_queries);
  const double qps_seed = n / t_seed;
  const double qps_scalar = n / t_scalar;
  const double qps_batch1 = n / t_batch1;
  const double qps_batchn = n / t_batchn;
  const double speedup = qps_batchn / qps_seed;

  std::printf("\n%-24s %14s %12s\n", "mode", "QPS", "vs seed");
  std::printf("%-24s %14.0f %11.2fx\n", "seed_serial", qps_seed, 1.0);
  std::printf("%-24s %14.0f %11.2fx\n", "scalar_serial", qps_scalar,
              qps_scalar / qps_seed);
  std::printf("%-24s %14.0f %11.2fx\n", "batch_1thread", qps_batch1,
              qps_batch1 / qps_seed);
  std::printf("%-24s %14.0f %11.2fx  (threads=%d)\n", "batch_threads",
              qps_batchn, speedup, threads);
  std::printf("\nbatch vs scalar bitwise mismatches: %zu (must be 0)\n",
              mismatches);
  std::printf("max |batch - seed| (FP rounding only): %.3g\n",
              max_diff_vs_seed);
  std::printf("speedup (batched multi-threaded vs seed serial): %.2fx\n",
              speedup);

  // --- AdaptiveGrid trajectory numbers (no seed baseline reconstruction) ----
  Rng ag_rng(seed + 3);
  AdaptiveGrid ag(data, 1.0, ag_rng);
  const size_t ag_queries = num_queries / 4;
  std::vector<double> ag_scalar(ag_queries);
  std::vector<double> ag_batch(ag_queries);
  const Synopsis& ag_ref = ag;
  const double t_ag_scalar = TimeBest(reps, [&] {
    for (size_t i = 0; i < ag_queries; ++i) {
      ag_scalar[i] = ag_ref.Answer(queries[i]);
    }
  });
  const double t_ag_batch = TimeBest(reps, [&] {
    engine_mt.AnswerAll(
        ag, std::span<const Rect>(queries.data(), ag_queries),
        std::span<double>(ag_batch.data(), ag_queries));
  });
  size_t ag_mismatches = 0;
  for (size_t i = 0; i < ag_queries; ++i) {
    if (ag_batch[i] != ag_scalar[i]) ++ag_mismatches;
  }
  const double ag_n = static_cast<double>(ag_queries);
  std::printf("\nadaptive grid (m1=%d): scalar %0.f QPS, batched %.0f QPS "
              "(%.2fx), mismatches %zu\n",
              ag.level1_size(), ag_n / t_ag_scalar, ag_n / t_ag_batch,
              t_ag_scalar / t_ag_batch, ag_mismatches);

  // --- JSON for the perf trajectory -----------------------------------------
  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"bench_query_throughput\",\n"
               "  \"config\": {\n"
               "    \"points\": %lld,\n"
               "    \"queries\": %zu,\n"
               "    \"reps\": %d,\n"
               "    \"seed\": %llu,\n"
               "    \"threads\": %d\n"
               "  },\n"
               "  \"uniform_grid\": {\n"
               "    \"grid_size\": %d,\n"
               "    \"seed_serial_qps\": %.0f,\n"
               "    \"scalar_serial_qps\": %.0f,\n"
               "    \"batch_1thread_qps\": %.0f,\n"
               "    \"batch_threads_qps\": %.0f,\n"
               "    \"speedup_batch_vs_seed\": %.3f,\n"
               "    \"batch_bitwise_equal_scalar\": %s,\n"
               "    \"max_abs_diff_vs_seed\": %.6g\n"
               "  },\n"
               "  \"adaptive_grid\": {\n"
               "    \"level1_size\": %d,\n"
               "    \"queries\": %zu,\n"
               "    \"scalar_qps\": %.0f,\n"
               "    \"batch_qps\": %.0f,\n"
               "    \"batch_bitwise_equal_scalar\": %s\n"
               "  }\n"
               "}\n",
               static_cast<long long>(num_points), num_queries, reps,
               static_cast<unsigned long long>(seed), threads, ug.grid_size(),
               qps_seed, qps_scalar, qps_batch1, qps_batchn, speedup,
               mismatches == 0 ? "true" : "false", max_diff_vs_seed,
               ag.level1_size(), ag_queries, ag_n / t_ag_scalar,
               ag_n / t_ag_batch, ag_mismatches == 0 ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", out_path);

  return mismatches == 0 && ag_mismatches == 0 ? 0 : 1;
}
