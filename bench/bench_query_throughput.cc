// Query-serving throughput of the batched engine vs the seed's serial
// per-query loop, plus per-method scalar-vs-batch sections for the
// synopses with non-trivial batch paths.
//
// The seed answered every query through a virtual Synopsis::Answer call
// that converted domain to cell coordinates with four divisions and ran
// the generic per-axis segment decomposition (up to nine prefix block
// sums). The batched engine hoists virtual dispatch and per-query setup
// out of the loop and answers each query with the branch-light bilinear
// prefix kernel (index/frac_kernel.h), sharded across the thread pool.
// This bench reconstructs the seed path faithfully — same classes
// (GridCounts::ToCellCoords + PrefixSum2D::FractionalSum), same noisy
// counts, same virtual dispatch — and reports QPS for:
//
//   seed_serial       the seed's per-query loop
//   scalar_serial     per-query virtual Answer with the new kernel
//   batch_1thread     QueryEngine, single thread
//   batch_threads     QueryEngine, all hardware threads
//
// Per-method sections (mixed paper workload, all six size classes):
//
//   adaptive_grid     scalar Answer vs the flattened-leaf batch pipeline
//                     (index/leaf_index.h), at production scale: the AG
//                     dataset defaults to 16M points, where the scalar
//                     border walk is memory-latency-bound — exactly the
//                     regime the flat index and its cell-grouped kernels
//                     target. The speedup is a ratio within one run, so
//                     VM noise largely cancels.
//   hierarchy_grid    scalar Answer vs the shared FracView2D batch kernel
//                     over the refined leaf grid.
//   adaptive_grid_nd  scalar Answer vs the flattened N-d leaf path
//                     (nd/leaf_index_nd.h), 3-d mixture dataset.
//
// Every batch answer is checked bitwise against the scalar Answer path;
// any mismatch fails the bench (and the bench_throughput_smoke ctest).
//
// Results are appended-to-stdout and written as JSON (default
// BENCH_throughput.json, override with DPGRID_BENCH_OUT) so future PRs
// have a perf trajectory to compare against.
//
// Env knobs: DPGRID_TP_QUERIES (default 1000000), DPGRID_TP_POINTS
// (default 1000000), DPGRID_TP_AG_POINTS (default 16000000),
// DPGRID_TP_AG_QUERIES (default 100000), DPGRID_TP_ND_POINTS (default
// 2000000), DPGRID_TP_ND_QUERIES (default 50000), DPGRID_TP_REPS
// (default 5), DPGRID_SEED.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/check.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "data/generators.h"
#include "grid/adaptive_grid.h"
#include "grid/uniform_grid.h"
#include "hier/hierarchy_grid.h"
#include "index/prefix_sum2d.h"
#include "nd/adaptive_grid_nd.h"
#include "nd/dataset_nd.h"
#include "nd/workload_nd.h"
#include "query/query_engine.h"
#include "query/workload.h"

namespace dpgrid {
namespace {

using bench::EnvInt;
using bench::NowSeconds;

// The seed's UniformGrid query path, reconstructed verbatim from the same
// public pieces the seed used: division-based GridCounts::ToCellCoords and
// the generic PrefixSum2D::FractionalSum, behind a virtual Answer.
class SeedStyleUniformGrid : public Synopsis {
 public:
  explicit SeedStyleUniformGrid(const UniformGrid& ug)
      : counts_(ug.noisy_counts()),
        prefix_(counts_.values(), counts_.nx(), counts_.ny()) {}

  double Answer(const Rect& query) const override {
    double x0 = 0.0;
    double x1 = 0.0;
    double y0 = 0.0;
    double y1 = 0.0;
    counts_.ToCellCoords(query, &x0, &x1, &y0, &y1);
    return prefix_.FractionalSum(x0, x1, y0, y1);
  }

  std::string Name() const override { return "seed-UG"; }
  std::vector<SynopsisCell> ExportCells() const override { return {}; }

 private:
  GridCounts counts_;
  PrefixSum2D prefix_;
};

// Best-of-reps wall time of `fn`, which must fill `out`.
template <typename Fn>
double TimeBest(int reps, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const double t0 = NowSeconds();
    fn();
    const double dt = NowSeconds() - t0;
    if (dt < best) best = dt;
  }
  return best;
}

std::vector<Rect> MakePaperWorkload(const Rect& domain, size_t num_queries,
                                    uint64_t seed) {
  Rng rng(seed);
  const int per_size = static_cast<int>((num_queries + 5) / 6);
  Workload workload = GenerateWorkload(domain, domain.Width() / 2,
                                       domain.Height() / 2, 6, per_size, rng);
  std::vector<Rect> queries;
  for (const auto& group : workload.queries) {
    queries.insert(queries.end(), group.begin(), group.end());
  }
  queries.resize(num_queries);
  return queries;
}

// Scalar-vs-batch ratio of one 2-D synopsis on `queries`; batch answers
// must be bitwise-equal to scalar ones.
struct MethodResult {
  double scalar_qps = 0.0;
  double batch_qps = 0.0;
  double speedup = 0.0;
  bool bitwise_equal = false;
};

MethodResult RunMethodSection(const Synopsis& synopsis,
                              const std::vector<Rect>& queries, int reps) {
  const size_t n = queries.size();
  std::vector<double> scalar_out(n);
  std::vector<double> batch_out(n);
  const double t_scalar = TimeBest(reps, [&] {
    for (size_t i = 0; i < n; ++i) scalar_out[i] = synopsis.Answer(queries[i]);
  });
  const double t_batch = TimeBest(reps, [&] {
    synopsis.AnswerBatch(queries, batch_out);
  });
  MethodResult r;
  r.scalar_qps = static_cast<double>(n) / t_scalar;
  r.batch_qps = static_cast<double>(n) / t_batch;
  r.speedup = t_scalar / t_batch;
  r.bitwise_equal =
      std::memcmp(scalar_out.data(), batch_out.data(), n * sizeof(double)) ==
      0;
  return r;
}

}  // namespace
}  // namespace dpgrid

int main() {
  using namespace dpgrid;

  const auto num_queries =
      static_cast<size_t>(EnvInt("DPGRID_TP_QUERIES", 1000000));
  const int64_t num_points = EnvInt("DPGRID_TP_POINTS", 1000000);
  const int64_t ag_points = EnvInt("DPGRID_TP_AG_POINTS", 16000000);
  const auto ag_queries =
      static_cast<size_t>(EnvInt("DPGRID_TP_AG_QUERIES", 100000));
  const int64_t nd_points = EnvInt("DPGRID_TP_ND_POINTS", 2000000);
  const auto nd_queries =
      static_cast<size_t>(EnvInt("DPGRID_TP_ND_QUERIES", 50000));
  const int reps = static_cast<int>(EnvInt("DPGRID_TP_REPS", 5));
  const auto seed = static_cast<uint64_t>(EnvInt("DPGRID_SEED", 20130408));
  const char* out_path = std::getenv("DPGRID_BENCH_OUT");
  if (out_path == nullptr || *out_path == '\0') {
    out_path = "BENCH_throughput.json";
  }

  std::printf("=== bench_query_throughput ===\n");
  std::printf("points=%lld queries=%zu ag_points=%lld ag_queries=%zu "
              "nd_points=%lld nd_queries=%zu reps=%d seed=%llu\n",
              static_cast<long long>(num_points), num_queries,
              static_cast<long long>(ag_points), ag_queries,
              static_cast<long long>(nd_points), nd_queries, reps,
              static_cast<unsigned long long>(seed));

  Rng data_rng(seed);
  Dataset data = MakeCheckinLike(num_points, data_rng);
  std::vector<Rect> queries =
      MakePaperWorkload(data.domain(), num_queries, seed + 1);

  Rng build_rng(seed + 2);
  UniformGrid ug(data, 1.0, build_rng);
  SeedStyleUniformGrid seed_ug(ug);
  std::printf("uniform grid: m=%d (%zu cells)\n", ug.grid_size(),
              static_cast<size_t>(ug.grid_size()) * ug.grid_size());

  std::vector<double> seed_answers(num_queries);
  std::vector<double> scalar_answers(num_queries);
  std::vector<double> batch_answers(num_queries);

  // --- seed-style serial per-query loop ------------------------------------
  const Synopsis& seed_ref = seed_ug;
  const double t_seed = TimeBest(reps, [&] {
    for (size_t i = 0; i < num_queries; ++i) {
      seed_answers[i] = seed_ref.Answer(queries[i]);
    }
  });

  // --- new scalar path, still serial per-query virtual calls ---------------
  const Synopsis& new_ref = ug;
  const double t_scalar = TimeBest(reps, [&] {
    for (size_t i = 0; i < num_queries; ++i) {
      scalar_answers[i] = new_ref.Answer(queries[i]);
    }
  });

  // --- batched engine, one thread -------------------------------------------
  QueryEngineOptions serial_opts;
  serial_opts.num_threads = 1;
  QueryEngine engine_1t(serial_opts);
  const double t_batch1 = TimeBest(reps, [&] {
    engine_1t.AnswerAll(ug, queries, batch_answers);
  });

  // --- batched engine, all hardware threads ---------------------------------
  QueryEngine engine_mt;
  const int threads = engine_mt.num_threads();
  const double t_batchn = TimeBest(reps, [&] {
    engine_mt.AnswerAll(ug, queries, batch_answers);
  });

  // --- validation ------------------------------------------------------------
  size_t mismatches = 0;
  double max_diff_vs_seed = 0.0;
  for (size_t i = 0; i < num_queries; ++i) {
    if (batch_answers[i] != scalar_answers[i]) ++mismatches;
    const double diff = std::abs(batch_answers[i] - seed_answers[i]);
    if (diff > max_diff_vs_seed) max_diff_vs_seed = diff;
  }

  const double n = static_cast<double>(num_queries);
  const double qps_seed = n / t_seed;
  const double qps_scalar = n / t_scalar;
  const double qps_batch1 = n / t_batch1;
  const double qps_batchn = n / t_batchn;
  const double speedup = qps_batchn / qps_seed;

  std::printf("\n%-24s %14s %12s\n", "mode", "QPS", "vs seed");
  std::printf("%-24s %14.0f %11.2fx\n", "seed_serial", qps_seed, 1.0);
  std::printf("%-24s %14.0f %11.2fx\n", "scalar_serial", qps_scalar,
              qps_scalar / qps_seed);
  std::printf("%-24s %14.0f %11.2fx\n", "batch_1thread", qps_batch1,
              qps_batch1 / qps_seed);
  std::printf("%-24s %14.0f %11.2fx  (threads=%d)\n", "batch_threads",
              qps_batchn, speedup, threads);
  std::printf("\nbatch vs scalar bitwise mismatches: %zu (must be 0)\n",
              mismatches);
  std::printf("max |batch - seed| (FP rounding only): %.3g\n",
              max_diff_vs_seed);
  std::printf("speedup (batched multi-threaded vs seed serial): %.2fx\n",
              speedup);

  // --- hierarchy grid: scalar vs shared FracView2D batch kernel -------------
  Rng hier_rng(seed + 4);
  HierarchyGrid hier(data, 1.0, hier_rng);
  const size_t hier_queries = std::max<size_t>(num_queries / 4, 1);
  std::vector<Rect> hier_q(queries.begin(), queries.begin() + hier_queries);
  const MethodResult hier_res = RunMethodSection(hier, hier_q, reps);
  std::printf("\nhierarchy grid (%s): scalar %.0f QPS, batch %.0f QPS "
              "(%.2fx), bitwise %s\n",
              hier.Name().c_str(), hier_res.scalar_qps, hier_res.batch_qps,
              hier_res.speedup, hier_res.bitwise_equal ? "yes" : "NO");

  // --- adaptive grid at production scale: flattened-leaf batch pipeline -----
  std::printf("\nbuilding adaptive grid on %lld points...\n",
              static_cast<long long>(ag_points));
  Rng ag_data_rng(seed + 5);
  Dataset ag_data = MakeCheckinLike(ag_points, ag_data_rng);
  Rng ag_rng(seed + 3);
  AdaptiveGrid ag(ag_data, 1.0, ag_rng);
  DPGRID_CHECK_MSG(ag.flat_index().built(),
                   "adaptive grid flat leaf index must be materialized");
  std::vector<Rect> ag_q =
      MakePaperWorkload(ag_data.domain(), ag_queries, seed + 6);
  const MethodResult ag_res = RunMethodSection(ag, ag_q, reps);
  std::printf("adaptive grid (m1=%d, %lld leaf cells, %zu flat-arena "
              "doubles): scalar %.0f QPS, batch %.0f QPS (%.2fx), "
              "bitwise %s\n",
              ag.level1_size(), static_cast<long long>(ag.TotalLeafCells()),
              ag.flat_index().arena_size(), ag_res.scalar_qps,
              ag_res.batch_qps, ag_res.speedup,
              ag_res.bitwise_equal ? "yes" : "NO");

  // --- adaptive grid N-d: flattened leaf path --------------------------------
  const size_t nd_dims = 3;
  BoxNd nd_domain(std::vector<double>(nd_dims, 0.0),
                  std::vector<double>(nd_dims, 100.0));
  Rng nd_data_rng(seed + 7);
  const std::vector<ClusterNd> clusters =
      MakeRandomClustersNd(nd_domain, 24, 0.02, 0.08, 1.0, nd_data_rng);
  const DatasetNd nd_data =
      MakeGaussianMixtureNd(nd_domain, nd_points, clusters, 0.1, nd_data_rng);
  Rng nd_workload_rng(seed + 8);
  const WorkloadNd nd_workload = GenerateWorkloadNd(
      nd_domain, std::vector<double>(nd_dims, 50.0), 4,
      static_cast<int>((nd_queries + 3) / 4), nd_workload_rng);
  std::vector<BoxNd> nd_q;
  for (const auto& group : nd_workload.queries) {
    nd_q.insert(nd_q.end(), group.begin(), group.end());
  }
  if (nd_q.size() > nd_queries) nd_q.resize(nd_queries);
  Rng nd_build_rng(seed + 9);
  AdaptiveGridNd ag_nd(nd_data, 1.0, nd_build_rng);
  DPGRID_CHECK_MSG(ag_nd.flat_index().built(),
                   "N-d flat leaf index must be materialized");
  std::vector<double> nd_scalar(nd_q.size());
  std::vector<double> nd_batch(nd_q.size());
  const double t_nd_scalar = TimeBest(reps, [&] {
    for (size_t i = 0; i < nd_q.size(); ++i) {
      nd_scalar[i] = ag_nd.Answer(nd_q[i]);
    }
  });
  const double t_nd_batch = TimeBest(reps, [&] {
    ag_nd.AnswerBatch(nd_q, nd_batch);
  });
  const bool nd_equal = std::memcmp(nd_scalar.data(), nd_batch.data(),
                                    nd_q.size() * sizeof(double)) == 0;
  const double nd_n = static_cast<double>(nd_q.size());
  std::printf("adaptive grid %zu-d (m1=%d): scalar %.0f QPS, batch %.0f "
              "QPS (%.2fx), bitwise %s\n",
              nd_dims, ag_nd.level1_size(), nd_n / t_nd_scalar,
              nd_n / t_nd_batch, t_nd_scalar / t_nd_batch,
              nd_equal ? "yes" : "NO");

  // --- JSON for the perf trajectory -----------------------------------------
  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"bench_query_throughput\",\n"
               "  \"config\": {\n"
               "    \"points\": %lld,\n"
               "    \"queries\": %zu,\n"
               "    \"ag_points\": %lld,\n"
               "    \"ag_queries\": %zu,\n"
               "    \"nd_points\": %lld,\n"
               "    \"nd_queries\": %zu,\n"
               "    \"reps\": %d,\n"
               "    \"seed\": %llu,\n"
               "    \"threads\": %d\n"
               "  },\n"
               "  \"uniform_grid\": {\n"
               "    \"grid_size\": %d,\n"
               "    \"seed_serial_qps\": %.0f,\n"
               "    \"scalar_serial_qps\": %.0f,\n"
               "    \"batch_1thread_qps\": %.0f,\n"
               "    \"batch_threads_qps\": %.0f,\n"
               "    \"speedup_batch_vs_seed\": %.3f,\n"
               "    \"batch_bitwise_equal_scalar\": %s,\n"
               "    \"max_abs_diff_vs_seed\": %.6g\n"
               "  },\n",
               static_cast<long long>(num_points), num_queries,
               static_cast<long long>(ag_points), ag_queries,
               static_cast<long long>(nd_points), nd_queries, reps,
               static_cast<unsigned long long>(seed), threads, ug.grid_size(),
               qps_seed, qps_scalar, qps_batch1, qps_batchn, speedup,
               mismatches == 0 ? "true" : "false", max_diff_vs_seed);
  std::fprintf(f,
               "  \"adaptive_grid\": {\n"
               "    \"level1_size\": %d,\n"
               "    \"leaf_cells\": %lld,\n"
               "    \"flat_arena_doubles\": %zu,\n"
               "    \"queries\": %zu,\n"
               "    \"scalar_qps\": %.0f,\n"
               "    \"batch_qps\": %.0f,\n"
               "    \"speedup_batch_vs_scalar\": %.3f,\n"
               "    \"batch_bitwise_equal_scalar\": %s\n"
               "  },\n"
               "  \"hierarchy_grid\": {\n"
               "    \"name\": \"%s\",\n"
               "    \"queries\": %zu,\n"
               "    \"scalar_qps\": %.0f,\n"
               "    \"batch_qps\": %.0f,\n"
               "    \"speedup_batch_vs_scalar\": %.3f,\n"
               "    \"batch_bitwise_equal_scalar\": %s\n"
               "  },\n"
               "  \"adaptive_grid_nd\": {\n"
               "    \"dims\": %zu,\n"
               "    \"level1_size\": %d,\n"
               "    \"queries\": %zu,\n"
               "    \"scalar_qps\": %.0f,\n"
               "    \"batch_qps\": %.0f,\n"
               "    \"speedup_batch_vs_scalar\": %.3f,\n"
               "    \"batch_bitwise_equal_scalar\": %s\n"
               "  }\n"
               "}\n",
               ag.level1_size(), static_cast<long long>(ag.TotalLeafCells()),
               ag.flat_index().arena_size(), ag_q.size(), ag_res.scalar_qps,
               ag_res.batch_qps, ag_res.speedup,
               ag_res.bitwise_equal ? "true" : "false", hier.Name().c_str(),
               hier_q.size(), hier_res.scalar_qps, hier_res.batch_qps,
               hier_res.speedup, hier_res.bitwise_equal ? "true" : "false",
               nd_dims, ag_nd.level1_size(), nd_q.size(), nd_n / t_nd_scalar,
               nd_n / t_nd_batch, t_nd_scalar / t_nd_batch,
               nd_equal ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", out_path);

  const bool all_equal = mismatches == 0 && ag_res.bitwise_equal &&
                         hier_res.bitwise_equal && nd_equal;
  return all_equal ? 0 : 1;
}
