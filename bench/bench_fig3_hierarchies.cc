// Reproduces Figure 3 of the paper: the effect of building hierarchies (and
// the Privelet wavelet) on top of a 360x360 uniform grid, on the checkin and
// landmark datasets.
//
// Paper expectation: hierarchies H_{b,d} give only a small improvement over
// the plain 360 grid in 2-D (the dimensionality analysis of §IV-C);
// Privelet (W360) gives a clearer, but still modest, improvement.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/factories.h"
#include "grid/guidelines.h"
#include "metrics/table.h"

namespace dpgrid {
namespace bench {
namespace {

void Run() {
  BenchConfig config = BenchConfig::FromEnv();
  PrintConfig("bench_fig3_hierarchies (paper Figure 3)", config);

  for (const DatasetSpec& spec : PaperDatasets(config.scale)) {
    const std::string name = spec.name;
    if (name != "checkin" && name != "landmark") continue;  // as in paper
    for (double eps : {0.1, 1.0}) {
      Scenario scenario = MakeScenario(spec, eps, config);
      const double n = static_cast<double>(scenario.dataset.size());
      const int suggested = ChooseUniformGridSize(n, eps);

      std::vector<MethodResult> methods;
      methods.push_back(RunMethod("U" + std::to_string(suggested) + "*",
                                  MakeUgFactory(suggested), scenario, config));
      methods.push_back(
          RunMethod("U360", MakeUgFactory(360), scenario, config));
      methods.push_back(
          RunMethod("W360", MakeWaveletFactory(360), scenario, config));
      struct HierSpec {
        int b;
        int d;
      };
      for (const HierSpec h : {HierSpec{2, 4}, HierSpec{2, 3}, HierSpec{3, 3},
                               HierSpec{4, 2}, HierSpec{5, 2}, HierSpec{6, 2}}) {
        std::string label =
            "H" + std::to_string(h.b) + "," + std::to_string(h.d);
        methods.push_back(RunMethod(label, MakeHierFactory(360, h.b, h.d),
                                    scenario, config));
      }

      const std::string title = std::string("Fig.3 ") + spec.name +
                                ", eps=" + FormatDouble(eps, 2) +
                                " (hierarchies over a 360x360 grid)";
      PrintCandlestickTable(title, methods);
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace dpgrid

int main() {
  dpgrid::bench::Run();
  return 0;
}
