// Reproduces Figure 1 of the paper: illustrations of the four evaluation
// datasets, here rendered as ASCII density heatmaps of our synthetic
// stand-ins (see DESIGN.md §2 for the substitution rationale).
//
// Paper expectation, per dataset:
//   road     — two dense state-shaped regions, large blank areas;
//   checkin  — world-map-like clusters with blank oceans;
//   landmark — population-style spread over the continental US;
//   storage  — the same spread at a tiny N = 9000.

#include <cstdio>

#include "bench/bench_util.h"
#include "data/ascii_map.h"
#include "data/generators.h"

namespace dpgrid {
namespace bench {
namespace {

void Run() {
  BenchConfig config = BenchConfig::FromEnv();
  PrintConfig("bench_fig1_datasets (paper Figure 1)", config);

  for (const DatasetSpec& spec : PaperDatasets(config.scale)) {
    Rng rng(config.seed);
    Dataset data = spec.make(spec.n, rng);
    std::printf("\n(%s) %s-like dataset, N=%lld, domain %s\n",
                spec.name, spec.name, static_cast<long long>(data.size()),
                data.domain().ToString().c_str());
    // Aspect-ratio-aware render width.
    const double aspect = data.domain().Width() / data.domain().Height();
    const size_t height = 22;
    const size_t width =
        static_cast<size_t>(std::min(110.0, height * aspect * 2.0));
    std::fputs(RenderAsciiHeatmap(data, width, height).c_str(), stdout);
  }
}

}  // namespace
}  // namespace bench
}  // namespace dpgrid

int main() {
  dpgrid::bench::Run();
  return 0;
}
