#ifndef DPGRID_BENCH_FACTORIES_H_
#define DPGRID_BENCH_FACTORIES_H_

#include <memory>

#include "bench/bench_util.h"
#include "grid/adaptive_grid.h"
#include "grid/uniform_grid.h"
#include "hier/hierarchy_grid.h"
#include "kd/kd_tree.h"
#include "wavelet/privelet.h"

namespace dpgrid {
namespace bench {

/// UG with a fixed grid size (0 = Guideline 1).
inline SynopsisFactory MakeUgFactory(int grid_size = 0) {
  return [grid_size](const Dataset& d, double eps, Rng& rng) {
    UniformGridOptions opts;
    opts.grid_size = grid_size;
    return std::make_unique<UniformGrid>(d, eps, rng, opts);
  };
}

/// AG with fixed m1 (0 = suggested), alpha and c2.
inline SynopsisFactory MakeAgFactory(int m1 = 0, double alpha = 0.5,
                                     double c2 = 5.0) {
  return [m1, alpha, c2](const Dataset& d, double eps, Rng& rng) {
    AdaptiveGridOptions opts;
    opts.level1_size = m1;
    opts.alpha = alpha;
    opts.c2 = c2;
    return std::make_unique<AdaptiveGrid>(d, eps, rng, opts);
  };
}

/// Privelet on a fixed base grid size (0 = Guideline 1).
inline SynopsisFactory MakeWaveletFactory(int grid_size = 0) {
  return [grid_size](const Dataset& d, double eps, Rng& rng) {
    PriveletOptions opts;
    opts.grid_size = grid_size;
    return std::make_unique<Privelet>(d, eps, rng, opts);
  };
}

/// H_{b,d} grid hierarchy over an m x m leaf grid.
inline SynopsisFactory MakeHierFactory(int leaf_size, int branching,
                                       int depth) {
  return [leaf_size, branching, depth](const Dataset& d, double eps,
                                       Rng& rng) {
    HierarchyGridOptions opts;
    opts.leaf_size = leaf_size;
    opts.branching = branching;
    opts.depth = depth;
    return std::make_unique<HierarchyGrid>(d, eps, rng, opts);
  };
}

/// KD-standard baseline.
inline SynopsisFactory MakeKdStandardFactory() {
  return [](const Dataset& d, double eps, Rng& rng) {
    return std::make_unique<KdTree>(d, eps, rng, KdStandardOptions());
  };
}

/// KD-hybrid baseline.
inline SynopsisFactory MakeKdHybridFactory() {
  return [](const Dataset& d, double eps, Rng& rng) {
    return std::make_unique<KdTree>(d, eps, rng, KdHybridOptions());
  };
}

}  // namespace bench
}  // namespace dpgrid

#endif  // DPGRID_BENCH_FACTORIES_H_
